// The bitset cover engine: per-hypergraph precomputed edge bitsets plus a
// bounded, concurrency-safe memo cache of bag-cover results keyed by the
// bag's vertex bitset. Every width evaluator in the repository bottoms out
// here; the cache is what lets A*/BB sibling states and GA populations stop
// re-solving identical bags.

package setcover

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hypertree/internal/bitset"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

// DefaultCacheCapacity is the bag-cover cache bound used when callers do
// not choose one: entries are a few words each, so 64k entries stay in the
// low megabytes even on large instances.
const DefaultCacheCapacity = 1 << 16

// DefaultCoverSampleEvery is how many cover queries pass between the
// cover_cache trace events an observed engine emits. Per-query events would
// swamp a trace (searches issue millions); one cumulative snapshot every few
// thousand queries reconstructs the same hit-rate curve.
const DefaultCoverSampleEvery = 1 << 12

// Engine is the bag-cover engine for one hypergraph: word-packed hyperedge
// sets and a memo cache of cover sizes keyed by bag bitset. An Engine is
// safe for concurrent use and is meant to be shared — across the states of
// one search, across GA workers, across SAIGA islands. The per-call mutable
// workspace lives in Scratch values, one per goroutine.
type Engine struct {
	h        *hypergraph.Hypergraph
	nv       int
	edgeBits []bitset.Set
	cache    *coverCache
	hits     atomic.Int64
	misses   atomic.Int64

	// parent makes this engine an attributed member view (see Member): the
	// hypergraph, edge bitsets, memo cache and recorder all belong to the
	// parent, while hits/misses count only the queries issued through the
	// view. Immutable after Member; nil on a root engine.
	parent *Engine

	// rec, when non-nil, receives sampled cover_cache events (cumulative
	// counter snapshots every sampleEvery queries). Set via SetRecorder
	// before the engine is shared across goroutines; the disabled cost on
	// the cover hot path is a single nil check.
	rec         obs.Recorder
	sampleEvery int64
	queries     atomic.Int64
	recStart    time.Time
}

// NewEngine builds an engine for h. cacheCapacity bounds the number of
// memoized bags; 0 disables memoization, negative selects
// DefaultCacheCapacity.
func NewEngine(h *hypergraph.Hypergraph, cacheCapacity int) *Engine {
	nv := h.N()
	m := h.M()
	words := bitset.Words(nv)
	backing := make([]uint64, words*m)
	eb := make([]bitset.Set, m)
	for e := 0; e < m; e++ {
		s := bitset.Set(backing[e*words : (e+1)*words])
		for _, v := range h.Edge(e) {
			s.Add(v)
		}
		eb[e] = s
	}
	eng := &Engine{h: h, nv: nv, edgeBits: eb}
	if cacheCapacity < 0 {
		cacheCapacity = DefaultCacheCapacity
	}
	if cacheCapacity > 0 {
		eng.cache = newCoverCache(cacheCapacity)
	}
	return eng
}

// Member returns an attributed view of the engine: queries through the view
// share the root engine's edge bitsets, memo cache and sampled recorder —
// so a member's query can still hit an entry a sibling populated — but the
// view's CacheStats counts only the queries issued through it. Hits and
// misses through a view also land on the root's counters, so the root's
// totals remain the global truth. Member of a member attaches to the same
// root (views do not nest).
func (e *Engine) Member() *Engine {
	r := e.root()
	return &Engine{h: r.h, nv: r.nv, edgeBits: r.edgeBits, cache: r.cache, parent: r}
}

// root resolves the engine that owns the shared state: itself for a root
// engine, the shared root for a member view.
func (e *Engine) root() *Engine {
	if e.parent != nil {
		return e.parent
	}
	return e
}

// addHit counts one cache hit on this engine and, for a member view, on the
// shared root too — the pairing that keeps member counts summing to the
// root's totals.
func (e *Engine) addHit() {
	e.hits.Add(1)
	if e.parent != nil {
		e.parent.hits.Add(1)
	}
}

func (e *Engine) addMiss() {
	e.misses.Add(1)
	if e.parent != nil {
		e.parent.misses.Add(1)
	}
}

// Hypergraph returns the hypergraph the engine covers bags of.
func (e *Engine) Hypergraph() *hypergraph.Hypergraph { return e.h }

// EdgeBits returns edge ei's vertex set as a bitset. The set is shared and
// must not be mutated.
func (e *Engine) EdgeBits(ei int) bitset.Set { return e.edgeBits[ei] }

// CacheStats reports the memo cache's hit/miss counters and current size.
// A hit is a query answered entirely from the cache; partially useful
// entries (e.g. a lower bound below the requested cap) count as misses.
// Evictions counts bags displaced by the FIFO bound — a high eviction rate
// means the working set outgrew the capacity and hits are being lost.
type CacheStats struct {
	Hits, Misses int64
	Evictions    int64
	Size         int
}

// CacheStats returns the engine's cache counters (zeros when memoization is
// disabled). Safe to call concurrently with cover queries from any
// goroutine: the counters are atomics and the size/eviction reads take the
// cache lock.
func (e *Engine) CacheStats() CacheStats {
	s := CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load()}
	if e.cache != nil {
		s.Size, s.Evictions = e.cache.sizeAndEvictions()
	}
	return s
}

// SetRecorder attaches rec to the engine: every sampleEvery-th cover query
// emits one cumulative cover_cache event (non-positive sampleEvery selects
// DefaultCoverSampleEvery). Attach before sharing the engine across
// goroutines — the field is read unsynchronized on the query path. A nil
// rec detaches.
func (e *Engine) SetRecorder(rec obs.Recorder, sampleEvery int64) {
	e.SetRecorderAt(rec, sampleEvery, time.Now())
}

// SetRecorderAt is SetRecorder with an explicit clock base: event t_ns is
// measured from start rather than from the attach instant. Callers with a
// run budget pass its StartTime so cover_cache events share the trace's
// time base — with separate bases, strict trace validation sees the skew as
// time going backwards.
func (e *Engine) SetRecorderAt(rec obs.Recorder, sampleEvery int64, start time.Time) {
	if sampleEvery <= 0 {
		sampleEvery = DefaultCoverSampleEvery
	}
	r := e.root()
	r.rec = rec
	r.sampleEvery = sampleEvery
	r.recStart = start
}

// observe counts one cover query against the sampling interval and emits a
// cover_cache snapshot when it completes. The disabled path is the nil
// check alone; BenchmarkNoopRecorder guards its cost. Member views sample
// against the root's query counter and emit the root's global snapshot, so
// a portfolio's trace cadence is independent of how the queries split
// across members.
func (e *Engine) observe() {
	r := e.root()
	if r.rec == nil {
		return
	}
	if r.queries.Add(1)%r.sampleEvery != 0 {
		return
	}
	s := r.CacheStats()
	r.rec.Record(obs.Event{
		Kind: obs.KindCoverCache, T: time.Since(r.recStart),
		CacheHits: s.Hits, CacheMisses: s.Misses,
		CacheEvictions: s.Evictions, CacheSize: s.Size,
	})
}

// Scratch is the per-goroutine workspace of an engine's cover queries. It
// draws its bag-sized bitsets from a pooled allocator and reuses the
// candidate buffers, so the steady-state hot path performs no allocation.
// A Scratch is not safe for concurrent use; each worker owns one.
type Scratch struct {
	pool      *bitset.Pool
	bag       bitset.Set
	uncovered bitset.Set
	key       []byte
	cand      []int
	candSeen  []bool
	candUsed  []bool
	candBits  []bitset.Set
	pos       []int32 // vertex -> bag position; -1 outside the bag
	elems     []int
	cands     []candSet
	posBuf    []int // backing store for the candidates' position lists
	offs      []int // start offset of each candidate's positions in posBuf
}

// NewScratch returns a fresh workspace for queries against e.
func (e *Engine) NewScratch() *Scratch {
	p := bitset.NewPool(e.nv)
	sc := &Scratch{
		pool:      p,
		bag:       p.Get(),
		uncovered: p.Get(),
		candSeen:  make([]bool, e.h.M()),
		pos:       make([]int32, e.nv),
	}
	for i := range sc.pos {
		sc.pos[i] = -1
	}
	return sc
}

// loadBag fills sc.bag and sc.cand for the given bag: the bag's bitset and
// the sorted indices of all hyperedges incident to it (the only useful
// cover candidates).
func (e *Engine) loadBag(sc *Scratch, bag []int) {
	sc.bag.Clear()
	sc.cand = sc.cand[:0]
	for _, v := range bag {
		sc.bag.Add(v)
		for _, ei := range e.h.IncidentEdges(v) {
			if !sc.candSeen[ei] {
				sc.candSeen[ei] = true
				sc.cand = append(sc.cand, ei)
			}
		}
	}
	for _, ei := range sc.cand {
		sc.candSeen[ei] = false
	}
	// Canonical ascending order: greedy tie-breaking then depends only on
	// the bag's vertex set, which keeps the memo cache consistent with
	// recomputation.
	insertionSortInts(sc.cand)
}

// GreedySize returns the size of a greedy cover of bag by hyperedges, or -1
// if the bag is uncoverable. Results are memoized by bag; a cached size is
// returned even when rng would have tie-broken differently (any greedy
// cover size is a valid upper bound).
func (e *Engine) GreedySize(sc *Scratch, bag []int, rng *rand.Rand) int {
	if len(bag) == 0 {
		return 0
	}
	e.observe()
	e.loadBag(sc, bag)
	if e.cache != nil {
		sc.key = sc.bag.AppendKey(sc.key[:0])
		if ent, ok := e.cache.lookup(sc.key); ok && ent.greedy != sizeUnknown {
			e.addHit()
			return int(ent.greedy)
		}
		e.addMiss()
	}
	size := e.greedySizeUncached(sc, rng)
	if e.cache != nil {
		e.cache.update(sc.key, func(ent *coverEntry) {
			ent.greedy = int32(size)
			if size == -1 {
				ent.exact = -1 // coverability does not depend on the mode
			}
		})
	}
	return size
}

// greedySizeUncached runs the bitset greedy over sc's loaded bag.
func (e *Engine) greedySizeUncached(sc *Scratch, rng *rand.Rand) int {
	sc.uncovered.CopyFrom(sc.bag)
	if cap(sc.candUsed) < len(sc.cand) {
		sc.candUsed = make([]bool, len(sc.cand))
	}
	used := sc.candUsed[:len(sc.cand)]
	for i := range used {
		used[i] = false
	}
	size := 0
	for sc.uncovered.Any() {
		best, bestGain, ties := -1, 0, 0
		for i, ei := range sc.cand {
			if used[i] {
				continue
			}
			gain := e.edgeBits[ei].AndCount(sc.uncovered)
			switch {
			case gain > bestGain:
				best, bestGain, ties = i, gain, 1
			case gain == bestGain && gain > 0:
				ties++
				if rng != nil && rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		if best < 0 {
			return -1 // some bag vertex is in no hyperedge
		}
		used[best] = true
		sc.uncovered.AndNot(e.edgeBits[sc.cand[best]])
		size++
	}
	return size
}

// ExactSizeCapped returns the minimum number of hyperedges covering bag,
// except that under a positive cap any minimum >= cap reports exactly cap
// (the caller prunes such bags anyway, so the search stops early). It
// returns -1 if the bag is uncoverable. Results — including cap-censored
// lower bounds — are memoized by bag.
func (e *Engine) ExactSizeCapped(sc *Scratch, bag []int, cap int) int {
	if len(bag) == 0 {
		return 0
	}
	e.observe()
	e.loadBag(sc, bag)
	if e.cache != nil {
		sc.key = sc.bag.AppendKey(sc.key[:0])
		if ent, ok := e.cache.lookup(sc.key); ok {
			if ent.exact != sizeUnknown {
				e.addHit()
				if ent.exact >= 0 && cap > 0 && int(ent.exact) >= cap {
					return cap
				}
				return int(ent.exact)
			}
			if cap > 0 && ent.exactLB != sizeUnknown && int(ent.exactLB) >= cap {
				e.addHit()
				return cap
			}
		}
		e.addMiss()
	}
	size := e.exactSizeUncached(sc, cap)
	if e.cache != nil {
		e.cache.update(sc.key, func(ent *coverEntry) {
			switch {
			case size == -1:
				ent.exact, ent.greedy = -1, -1
			case cap > 0 && size == cap:
				// Only a censored bound: the true minimum is >= cap.
				if ent.exactLB == sizeUnknown || int(ent.exactLB) < cap {
					ent.exactLB = int32(cap)
				}
			default:
				ent.exact = int32(size)
			}
		})
	}
	return size
}

// exactSizeUncached restricts the candidates to sc's loaded bag and runs
// the shared branch-and-bound core.
func (e *Engine) exactSizeUncached(sc *Scratch, cap int) int {
	// Bag positions, ascending by vertex id.
	sc.elems = sc.bag.AppendTo(sc.elems[:0])
	ne := len(sc.elems)
	for i, v := range sc.elems {
		sc.pos[v] = int32(i)
	}
	// Restrict each candidate edge to the bag, reusing the scratch buffers so
	// the restriction pass stops allocating once they are warm. The position
	// map is monotone and NextSetBit iterates ascending, so the position
	// lists come out ascending.
	sc.cands = sc.cands[:0]
	sc.candBits = sc.candBits[:0]
	sc.posBuf = sc.posBuf[:0]
	sc.offs = sc.offs[:0]
	for _, ei := range sc.cand {
		b := sc.pool.Get()
		sc.candBits = append(sc.candBits, b)
		b.CopyFrom(e.edgeBits[ei])
		b.And(sc.bag)
		sc.offs = append(sc.offs, len(sc.posBuf))
		for v := b.NextSetBit(0); v >= 0; v = b.NextSetBit(v + 1) {
			sc.posBuf = append(sc.posBuf, int(sc.pos[v]))
		}
		sc.cands = append(sc.cands, candSet{bits: b, orig: ei})
	}
	// Slice the shared position buffer only after it stops growing: appends
	// may move it, which would strand subslices taken earlier.
	for i := range sc.cands {
		end := len(sc.posBuf)
		if i+1 < len(sc.cands) {
			end = sc.offs[i+1]
		}
		sc.cands[i].elems = sc.posBuf[sc.offs[i]:end]
	}
	chosen, capped := exactCore(sc.bag, ne, sc.cands, cap)
	// exactCore compacts cands in place during dedup/domination, so release
	// the sets recorded at allocation time, not through cands.
	for _, b := range sc.candBits {
		sc.pool.Put(b)
	}
	for _, v := range sc.elems {
		sc.pos[v] = -1
	}
	switch {
	case capped:
		return cap
	case chosen == nil:
		return -1
	default:
		return len(chosen)
	}
}

// GreedyCover returns a greedy cover of bag as sorted hyperedge indices, or
// nil if uncoverable. Unlike GreedySize it materializes the chosen edges
// and bypasses the memo cache; it serves the decomposition builders, which
// need λ-sets, not just widths.
func (e *Engine) GreedyCover(bag []int, rng *rand.Rand) []int {
	return e.coverIndices(bag, rng, false)
}

// ExactCover returns a minimum cover of bag as sorted hyperedge indices, or
// nil if uncoverable.
func (e *Engine) ExactCover(bag []int) []int {
	return e.coverIndices(bag, nil, true)
}

func (e *Engine) coverIndices(bag []int, rng *rand.Rand, exact bool) []int {
	if len(bag) == 0 {
		return []int{}
	}
	sc := e.NewScratch()
	e.loadBag(sc, bag)
	sets := make([][]int, len(sc.cand))
	for i, ei := range sc.cand {
		sets[i] = e.h.Edge(ei)
	}
	var chosen []int
	if exact {
		chosen = Exact(bag, sets)
	} else {
		chosen = Greedy(bag, sets, rng)
	}
	if chosen == nil {
		return nil
	}
	out := make([]int, len(chosen))
	for i, ci := range chosen {
		out[i] = sc.cand[ci]
	}
	return out
}

// insertionSortInts sorts small slices in place without sort.Ints's
// interface overhead; candidate lists are usually tiny and nearly sorted
// (incident-edge lists are ascending per vertex).
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// ---- the memo cache ----

// sizeUnknown marks a coverEntry field that has not been computed yet
// (-1 is taken: it means "uncoverable").
const sizeUnknown = int32(-1 << 30)

// coverEntry memoizes what is known about one bag: its greedy cover size,
// its exact minimum, and — from cap-censored exact runs — a proven lower
// bound on the minimum.
type coverEntry struct {
	greedy  int32
	exact   int32
	exactLB int32
}

// maxCacheShards bounds the sharding of the cover cache. 16 shards keep
// lock contention negligible for the worker counts the parallel searches
// run (a few per core) while the per-shard maps stay large enough to hash
// well.
const maxCacheShards = 16

// coverCache is a bounded map from bag keys to cover entries, sharded by a
// hash of the key so concurrent search workers hitting the same engine do
// not serialize on one lock. Each shard is an independent map with its own
// FIFO ring; the shard capacities sum to the requested capacity, so the
// total size bound is exact while eviction order is only per-shard FIFO.
// All methods are safe for concurrent use.
type coverCache struct {
	shards    []cacheShard
	mask      uint64 // len(shards)-1; shard count is a power of two
	evictions atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	m        map[string]coverEntry
	ring     []string
	next     int
}

func newCoverCache(capacity int) *coverCache {
	ns := maxCacheShards
	for ns > 1 && ns > capacity {
		ns >>= 1
	}
	c := &coverCache{shards: make([]cacheShard, ns), mask: uint64(ns - 1)}
	per, extra := capacity/ns, capacity%ns
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		if i < extra {
			sh.capacity++
		}
		sh.m = make(map[string]coverEntry, sh.capacity/4)
		sh.ring = make([]string, 0, sh.capacity)
	}
	return c
}

// shard picks the shard for key by FNV-1a. The bag-key encoding trims
// trailing zero words, so the hash mixes exactly the meaningful bytes.
func (c *coverCache) shard(key []byte) *cacheShard {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// Fold the high bits in so shard choice is not just the low byte's parity
	// pattern (bag keys are little-endian popcount-sparse words).
	return &c.shards[(h^h>>32)&c.mask]
}

// lookup returns the entry for key, if present. The []byte-to-string
// conversion in the map index compiles to a no-alloc lookup.
func (c *coverCache) lookup(key []byte) (coverEntry, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	ent, ok := sh.m[string(key)]
	sh.mu.Unlock()
	return ent, ok
}

// update applies fn to key's entry, inserting (and, at shard capacity,
// evicting the shard's oldest bag) if absent.
func (c *coverCache) update(key []byte, fn func(*coverEntry)) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.m[string(key)]
	if !ok {
		ent = coverEntry{greedy: sizeUnknown, exact: sizeUnknown, exactLB: sizeUnknown}
		k := string(key)
		if len(sh.ring) < sh.capacity {
			sh.ring = append(sh.ring, k)
		} else {
			delete(sh.m, sh.ring[sh.next])
			sh.ring[sh.next] = k
			sh.next = (sh.next + 1) % sh.capacity
			c.evictions.Add(1)
		}
		fn(&ent)
		sh.m[k] = ent
		return
	}
	fn(&ent)
	sh.m[string(key)] = ent
}

func (c *coverCache) sizeAndEvictions() (int, int64) {
	size := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		size += len(sh.m)
		sh.mu.Unlock()
	}
	return size, c.evictions.Load()
}
