// Reference implementations of the cover routines: the original map/slice
// based greedy and branch-and-bound code, kept verbatim (modulo the restored
// candidate-priming and string-key bugs documented below) as the ground
// truth the bitset equivalence tests and benchmarks compare against. Nothing
// outside the package tests should call these.

package setcover

import (
	"fmt"
	"math/rand"
	"sort"
)

// greedyRef is the original map-based greedy cover (thesis Figure 7.2).
func greedyRef(universe []int, sets [][]int, rng *rand.Rand) []int {
	if len(universe) == 0 {
		return []int{}
	}
	uncovered := make(map[int]struct{}, len(universe))
	for _, v := range universe {
		uncovered[v] = struct{}{}
	}
	var chosen []int
	used := make([]bool, len(sets))
	for len(uncovered) > 0 {
		best, bestGain, ties := -1, 0, 0
		for i, s := range sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, v := range s {
				if _, ok := uncovered[v]; ok {
					gain++
				}
			}
			switch {
			case gain > bestGain:
				best, bestGain, ties = i, gain, 1
			case gain == bestGain && gain > 0:
				ties++
				if rng != nil && rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		if best < 0 {
			return nil // uncoverable
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, v := range sets[best] {
			delete(uncovered, v)
		}
	}
	sort.Ints(chosen)
	return chosen
}

// exactBBRef is the original branch-and-bound core, including the two
// hot-path defects the bitset rewrite removed: it dedups restricted
// candidates with fmt.Sprint string keys, and it primes the bound with a
// greedy pass over the unrestricted sets, redoing the restriction work.
// cap <= 0 means uncapped; (nil, true) means the optimum is >= cap.
func exactBBRef(universe []int, sets [][]int, cap int) (result []int, capped bool) {
	uniq := make(map[int]struct{}, len(universe))
	for _, v := range universe {
		uniq[v] = struct{}{}
	}
	elems := make([]int, 0, len(uniq))
	for v := range uniq {
		elems = append(elems, v)
	}
	sort.Ints(elems)
	pos := make(map[int]int, len(elems))
	for i, v := range elems {
		pos[v] = i
	}
	ne := len(elems)

	type cand struct {
		elems []int
		orig  int
	}
	var cands []cand
	seenKey := make(map[string]struct{})
	for i, s := range sets {
		var r []int
		for _, v := range s {
			if p, ok := pos[v]; ok {
				r = append(r, p)
			}
		}
		if len(r) == 0 {
			continue
		}
		sort.Ints(r)
		key := fmt.Sprint(r)
		if _, dup := seenKey[key]; dup {
			continue
		}
		seenKey[key] = struct{}{}
		cands = append(cands, cand{r, i})
	}
	kept := cands[:0]
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j || len(cands[i].elems) > len(cands[j].elems) {
				continue
			}
			if len(cands[i].elems) == len(cands[j].elems) && i < j {
				continue // equal sets were deduped; guard for safety
			}
			if subsetInts(cands[i].elems, cands[j].elems) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, cands[i])
		}
	}
	cands = kept

	restricted := make([][]int, len(cands))
	memberOf := make([][]int, ne)
	for i, c := range cands {
		restricted[i] = c.elems
		for _, e := range c.elems {
			memberOf[e] = append(memberOf[e], i)
		}
	}
	for e := 0; e < ne; e++ {
		if len(memberOf[e]) == 0 {
			return nil, false // element not coverable
		}
	}

	greedyCover := greedyRef(universe, sets, nil)
	if greedyCover == nil {
		return nil, false
	}
	bestLen := len(greedyCover)
	best := append([]int(nil), greedyCover...)
	if cap > 0 && bestLen > cap {
		bestLen = cap
		best = nil
	}
	counts := make([]int, ne)
	coveredCount := 0
	var chosen []int

	maxSetSize := 0
	for _, r := range restricted {
		if len(r) > maxSetSize {
			maxSetSize = len(r)
		}
	}

	add := func(i int) {
		for _, e := range restricted[i] {
			if counts[e] == 0 {
				coveredCount++
			}
			counts[e]++
		}
		chosen = append(chosen, i)
	}
	undo := func(i int) {
		for _, e := range restricted[i] {
			counts[e]--
			if counts[e] == 0 {
				coveredCount--
			}
		}
		chosen = chosen[:len(chosen)-1]
	}

	var dfs func()
	dfs = func() {
		if coveredCount == ne {
			if len(chosen) < bestLen {
				bestLen = len(chosen)
				best = best[:0]
				for _, ci := range chosen {
					best = append(best, cands[ci].orig)
				}
			}
			return
		}
		remaining := ne - coveredCount
		lb := len(chosen) + (remaining+maxSetSize-1)/maxSetSize
		if lb >= bestLen {
			return
		}
		branch, branchDeg := -1, 1<<30
		for e := 0; e < ne; e++ {
			if counts[e] > 0 {
				continue
			}
			if d := len(memberOf[e]); d < branchDeg {
				branch, branchDeg = e, d
			}
		}
		for _, si := range memberOf[branch] {
			add(si)
			dfs()
			undo(si)
		}
	}
	dfs()
	if best == nil || (cap > 0 && bestLen >= cap) {
		return nil, true
	}
	out := append([]int(nil), best...)
	sort.Ints(out)
	return out, false
}

// subsetInts reports whether sorted slice a is a subset of sorted slice b.
func subsetInts(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
