package setcover

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestEngineShardedCacheConcurrent hammers one shared engine from several
// goroutines, each with its own Scratch (the parallel searches' sharing
// pattern), and checks that the sharded cache returns the same deterministic
// exact sizes the serial engine computes and never exceeds its capacity.
func TestEngineShardedCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := randomHypergraph(rng, 40, 60, 5)

	// Serial reference answers for a fixed bag set.
	bags := make([][]int, 200)
	for i := range bags {
		bags[i] = randomBag(rng, 40)
	}
	ref := NewEngine(h, 0)
	refSc := ref.NewScratch()
	want := make([]int, len(bags))
	for i, bag := range bags {
		want[i] = ref.ExactSizeCapped(refSc, bag, 16)
	}

	eng := NewEngine(h, 64)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := eng.NewScratch()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for it := 0; it < 40; it++ {
				for i, bag := range bags {
					if got := eng.ExactSizeCapped(sc, bag, 16); got != want[i] {
						errs <- fmt.Errorf("worker %d bag %d: exact size %d, want %d", w, i, got, want[i])
						return
					}
					// Greedy sizes are rng-dependent upper bounds; just
					// exercise the cached path concurrently.
					if g := eng.GreedySize(sc, bag, rng); want[i] >= 0 && g < want[i] {
						errs <- fmt.Errorf("worker %d bag %d: greedy %d below exact %d", w, i, g, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := eng.CacheStats()
	if s.Size > 64 {
		t.Fatalf("sharded cache size %d exceeds capacity 64", s.Size)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("cache traffic looks wrong: hits=%d misses=%d", s.Hits, s.Misses)
	}
}

// TestEngineShardedCacheTinyCapacities: the shard count shrinks to the
// capacity, so even capacity 1 stays within bounds.
func TestEngineShardedCacheTinyCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := randomHypergraph(rng, 20, 30, 4)
	for _, capacity := range []int{1, 2, 3, 5, 16, 17} {
		eng := NewEngine(h, capacity)
		sc := eng.NewScratch()
		for i := 0; i < 300; i++ {
			eng.GreedySize(sc, randomBag(rng, 20), rng)
		}
		if s := eng.CacheStats(); s.Size > capacity {
			t.Fatalf("capacity %d: cache holds %d entries", capacity, s.Size)
		}
	}
}

// TestEngineCacheHitZeroAlloc pins the memoized fast path: once a bag's
// cover size is cached, re-querying it must not allocate (the hot path of
// every width evaluation inside the searches).
func TestEngineCacheHitZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	rng := rand.New(rand.NewSource(5))
	h := randomHypergraph(rng, 30, 45, 5)
	eng := NewEngine(h, DefaultCacheCapacity)
	sc := eng.NewScratch()
	bag := randomBag(rng, 30)
	eng.GreedySize(sc, bag, rng)
	eng.ExactSizeCapped(sc, bag, 16)
	if n := testing.AllocsPerRun(100, func() { eng.GreedySize(sc, bag, rng) }); n > 0 {
		t.Errorf("GreedySize cache hit allocates %.1f times per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { eng.ExactSizeCapped(sc, bag, 16) }); n > 0 {
		t.Errorf("ExactSizeCapped cache hit allocates %.1f times per op", n)
	}
}
