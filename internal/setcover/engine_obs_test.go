package setcover

import (
	"math/rand"
	"sync"
	"testing"

	"hypertree/internal/obs"
)

// collectRec gathers events under a lock, for sampling assertions.
type collectRec struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collectRec) Record(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectRec) snapshot() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// CacheStats must be readable while covers run — the counters are atomics and
// the size/eviction reads take the cache lock, so this passes under -race.
func TestEngineStatsRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randomHypergraph(rng, 40, 60, 5)
	eng := NewEngine(h, 64) // small capacity so evictions happen under load
	eng.SetRecorder(obs.Noop, 100)
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(seed int64) {
			defer workers.Done()
			sc := eng.NewScratch()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				bag := randomBag(r, h.N())
				eng.GreedySize(sc, bag, r)
				eng.ExactSizeCapped(sc, bag, 3)
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() { workers.Wait(); close(done) }()
	for {
		s := eng.CacheStats()
		if s.Hits < 0 || s.Misses < 0 || s.Evictions < 0 || s.Size < 0 {
			t.Fatalf("negative counters: %+v", s)
		}
		select {
		case <-done:
			if s := eng.CacheStats(); s.Hits+s.Misses == 0 {
				t.Fatalf("no cover queries recorded: %+v", s)
			}
			return
		default:
		}
	}
}

// With sampleEvery=1 every non-empty cover query emits one cumulative
// cover_cache snapshot; detaching the recorder stops the stream.
func TestEngineRecorderSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomHypergraph(rng, 30, 40, 4)
	eng := NewEngine(h, -1)
	rec := &collectRec{}
	eng.SetRecorder(rec, 1)
	sc := eng.NewScratch()
	const queries = 50
	for i := 0; i < queries; i++ {
		eng.GreedySize(sc, randomBag(rng, h.N()), rng)
	}
	events := rec.snapshot()
	if len(events) != queries {
		t.Fatalf("sampleEvery=1: got %d events for %d queries", len(events), queries)
	}
	var prev obs.Event
	for i, e := range events {
		if e.Kind != obs.KindCoverCache {
			t.Fatalf("event %d has kind %q", i, e.Kind)
		}
		if e.CacheHits < prev.CacheHits || e.CacheMisses < prev.CacheMisses ||
			e.CacheEvictions < prev.CacheEvictions || e.T < prev.T {
			t.Fatalf("cumulative snapshot went backwards at %d: %+v -> %+v", i, prev, e)
		}
		prev = e
	}
	// The sampling counter sits before the cache lookup, so the snapshot
	// stream covers all queries: the last event is at most one query behind.
	s := eng.CacheStats()
	if last := events[len(events)-1]; last.CacheHits+last.CacheMisses < s.Hits+s.Misses-1 {
		t.Fatalf("last snapshot %+v lags final stats %+v", last, s)
	}

	eng.SetRecorder(nil, 0)
	for i := 0; i < 10; i++ {
		eng.GreedySize(sc, randomBag(rng, h.N()), rng)
	}
	if got := len(rec.snapshot()); got != queries {
		t.Fatalf("detached recorder still received events: %d -> %d", queries, got)
	}
}

// A coarser interval emits one event per sampleEvery queries.
func TestEngineRecorderSamplingInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomHypergraph(rng, 20, 30, 4)
	eng := NewEngine(h, -1)
	rec := &collectRec{}
	eng.SetRecorder(rec, 10)
	sc := eng.NewScratch()
	for i := 0; i < 95; i++ {
		eng.GreedySize(sc, randomBag(rng, h.N()), rng)
	}
	if got := len(rec.snapshot()); got != 9 {
		t.Fatalf("sampleEvery=10 over 95 queries: got %d events, want 9", got)
	}
}

// BenchmarkNoopRecorder is the ISSUE's bench guard: the cover hot path with
// instrumentation disabled (nil recorder, one branch) versus attached at the
// maximal sampling rate with a discarding recorder. The disabled delta must
// stay within noise; compare with
//
//	go test -run - -bench NoopRecorder -count 10 ./internal/setcover | benchstat
func BenchmarkNoopRecorder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomHypergraph(rng, 60, 80, 5)
	bags := make([][]int, 64)
	for i := range bags {
		bags[i] = randomBag(rng, h.N())
	}
	run := func(b *testing.B, eng *Engine) {
		sc := eng.NewScratch()
		r := rand.New(rand.NewSource(2))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.GreedySize(sc, bags[i%len(bags)], r)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, NewEngine(h, -1))
	})
	b.Run("noop-every-1", func(b *testing.B) {
		eng := NewEngine(h, -1)
		eng.SetRecorder(obs.Noop, 1)
		run(b, eng)
	})
	b.Run("noop-sampled", func(b *testing.B) {
		eng := NewEngine(h, -1)
		eng.SetRecorder(obs.Noop, DefaultCoverSampleEvery)
		run(b, eng)
	})
}
