package setcover

import (
	"math/rand"
	"testing"
)

// randomInstance draws a universe and candidate sets, duplicate-free within
// each set (the hyperedge shape this package is used with).
func randomInstance(rng *rand.Rand) (universe []int, sets [][]int) {
	nu := 1 + rng.Intn(10)
	seen := map[int]bool{}
	for len(universe) < nu {
		v := rng.Intn(25)
		if !seen[v] {
			seen[v] = true
			universe = append(universe, v)
		}
	}
	m := rng.Intn(12)
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(6)
		es := map[int]bool{}
		var s []int
		for len(s) < k {
			v := rng.Intn(25)
			if !es[v] {
				es[v] = true
				s = append(s, v)
			}
		}
		sets = append(sets, s)
	}
	return universe, sets
}

// The bitset greedy must reproduce the reference exactly — same chosen
// indices, same rng stream consumption — for nil and seeded rngs.
func TestGreedyMatchesReference(t *testing.T) {
	meta := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		universe, sets := randomInstance(meta)
		got := Greedy(universe, sets, nil)
		want := greedyRef(universe, sets, nil)
		if !equalIntSlices(got, want) {
			t.Fatalf("nil-rng mismatch: got %v, want %v (u=%v sets=%v)", got, want, universe, sets)
		}
		seed := meta.Int63()
		got = Greedy(universe, sets, rand.New(rand.NewSource(seed)))
		want = greedyRef(universe, sets, rand.New(rand.NewSource(seed)))
		if !equalIntSlices(got, want) {
			t.Fatalf("seeded mismatch: got %v, want %v (u=%v sets=%v)", got, want, universe, sets)
		}
	}
}

// The bitset branch and bound must agree with the reference on the optimum
// size — including coverability and cap censoring. The chosen sets may
// differ (ties), so sizes and validity are compared, not indices.
func TestExactMatchesReference(t *testing.T) {
	meta := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		universe, sets := randomInstance(meta)
		got, gotCapped := exactBB(universe, sets, 0)
		want, wantCapped := exactBBRef(universe, sets, 0)
		if gotCapped || wantCapped {
			t.Fatalf("uncapped run reported capped (u=%v)", universe)
		}
		if (got == nil) != (want == nil) {
			t.Fatalf("coverability mismatch: got %v, want %v (u=%v sets=%v)", got, want, universe, sets)
		}
		if got != nil {
			if len(got) != len(want) {
				t.Fatalf("optimum mismatch: |got|=%d |want|=%d (u=%v sets=%v)", len(got), len(want), universe, sets)
			}
			if !Covers(universe, sets, got) {
				t.Fatalf("exactBB returned a non-cover %v (u=%v sets=%v)", got, universe, sets)
			}
		}
		cap := 1 + meta.Intn(4)
		gotC, gotCapped := exactBB(universe, sets, cap)
		wantC, wantCapped := exactBBRef(universe, sets, cap)
		if gotCapped != wantCapped || (gotC == nil) != (wantC == nil) {
			t.Fatalf("cap=%d mismatch: got (%v,%v), want (%v,%v) (u=%v sets=%v)",
				cap, gotC, gotCapped, wantC, wantCapped, universe, sets)
		}
		if gotC != nil && len(gotC) != len(wantC) {
			t.Fatalf("cap=%d size mismatch: %d vs %d", cap, len(gotC), len(wantC))
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// benchInstance is a mid-size cover instance exercising dedup/domination:
// a 60-element universe with 80 overlapping interval sets, many duplicated.
func benchInstance() (universe []int, sets [][]int) {
	for v := 0; v < 60; v++ {
		universe = append(universe, v)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		start := rng.Intn(55)
		width := 3 + rng.Intn(6)
		var s []int
		for v := start; v < start+width && v < 60; v++ {
			s = append(s, v)
		}
		sets = append(sets, s)
	}
	return universe, sets
}

// The headline satellite benchmark: the old exactBB spent most of its setup
// in fmt.Sprint dedup keys and an unrestricted greedy prime; run with
// -benchmem to see the allocation drop.
func BenchmarkExactBB(b *testing.B) {
	universe, sets := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exactBB(universe, sets, 0)
	}
}

func BenchmarkExactBBReference(b *testing.B) {
	universe, sets := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exactBBRef(universe, sets, 0)
	}
}

func BenchmarkGreedy(b *testing.B) {
	universe, sets := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy(universe, sets, nil)
	}
}

func BenchmarkGreedyReference(b *testing.B) {
	universe, sets := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		greedyRef(universe, sets, nil)
	}
}

// Engine hot path: repeated cached and uncached bag queries.
func BenchmarkEngineGreedySizeCached(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	h := randomHypergraph(rng, 120, 160, 5)
	bags := make([][]int, 64)
	for i := range bags {
		bags[i] = randomBag(rng, 120)
	}
	eng := NewEngine(h, -1)
	sc := eng.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.GreedySize(sc, bags[i%len(bags)], nil)
	}
}

func BenchmarkEngineGreedySizeUncached(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	h := randomHypergraph(rng, 120, 160, 5)
	bags := make([][]int, 64)
	for i := range bags {
		bags[i] = randomBag(rng, 120)
	}
	eng := NewEngine(h, 0)
	sc := eng.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.GreedySize(sc, bags[i%len(bags)], nil)
	}
}
