package setcover

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hypertree/internal/hypergraph"
)

// randomHypergraph builds a connected-ish random hypergraph for engine tests.
func randomHypergraph(rng *rand.Rand, n, m, maxEdge int) *hypergraph.Hypergraph {
	edges := make([][]int, 0, m)
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(maxEdge)
		seen := map[int]bool{}
		var e []int
		for len(e) < k {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				e = append(e, v)
			}
		}
		sort.Ints(e)
		edges = append(edges, e)
	}
	h := hypergraph.NewHypergraph(n)
	for _, e := range edges {
		h.AddEdge(e...)
	}
	return h
}

func randomBag(rng *rand.Rand, n int) []int {
	k := 1 + rng.Intn(8)
	if k > n {
		k = n
	}
	seen := map[int]bool{}
	var bag []int
	for len(bag) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			bag = append(bag, v)
		}
	}
	return bag
}

// incidentSets replicates what the evaluators used to do: gather the edges
// incident to the bag as plain slices for the public slice API.
func incidentSets(h *hypergraph.Hypergraph, bag []int) (idx []int, sets [][]int) {
	seen := make([]bool, h.M())
	for _, v := range bag {
		for _, ei := range h.IncidentEdges(v) {
			if !seen[ei] {
				seen[ei] = true
				idx = append(idx, ei)
			}
		}
	}
	sort.Ints(idx)
	for _, ei := range idx {
		sets = append(sets, h.Edge(ei))
	}
	return idx, sets
}

// The engine's cached sizes must match the uncached slice API on random bags.
func TestEngineMatchesSliceAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		h := randomHypergraph(rng, n, 3+rng.Intn(12), 1+rng.Intn(5))
		eng := NewEngine(h, -1)
		sc := eng.NewScratch()
		for q := 0; q < 30; q++ {
			bag := randomBag(rng, n)
			_, sets := incidentSets(h, bag)
			wantG := GreedySize(bag, sets, nil)
			if gotG := eng.GreedySize(sc, bag, nil); gotG != wantG {
				t.Fatalf("GreedySize(%v) = %d, want %d", bag, gotG, wantG)
			}
			wantE := ExactSize(bag, sets)
			cap := 1 + rng.Intn(4)
			var wantC int
			if len(bag) == 0 {
				wantC = 0
			} else {
				wantC = ExactSizeCapped(bag, sets, cap)
			}
			if gotC := eng.ExactSizeCapped(sc, bag, cap); gotC != wantC {
				t.Fatalf("ExactSizeCapped(%v, %d) = %d, want %d", bag, cap, gotC, wantC)
			}
			// A larger cap than any minimum gives the true exact size.
			if gotE := eng.ExactSizeCapped(sc, bag, len(bag)+1); gotE != wantE && !(wantE == len(bag)+1) {
				t.Fatalf("ExactSizeCapped(%v, uncapped) = %d, want %d", bag, gotE, wantE)
			}
		}
	}
}

// GreedyCover and ExactCover must return valid covers of the right size.
func TestEngineCoverValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(16)
		h := randomHypergraph(rng, n, 3+rng.Intn(10), 1+rng.Intn(5))
		eng := NewEngine(h, -1)
		sc := eng.NewScratch()
		for q := 0; q < 20; q++ {
			bag := randomBag(rng, n)
			all := h.Edges()
			g := eng.GreedyCover(bag, nil)
			if g == nil {
				if eng.GreedySize(sc, bag, nil) != -1 {
					t.Fatalf("GreedyCover nil but GreedySize coverable for %v", bag)
				}
				continue
			}
			if !Covers(bag, all, g) {
				t.Fatalf("GreedyCover(%v) = %v does not cover", bag, g)
			}
			if len(g) != eng.GreedySize(sc, bag, nil) {
				t.Fatalf("GreedyCover size %d != GreedySize %d", len(g), eng.GreedySize(sc, bag, nil))
			}
			ex := eng.ExactCover(bag)
			if !Covers(bag, all, ex) {
				t.Fatalf("ExactCover(%v) = %v does not cover", bag, ex)
			}
			if want := eng.ExactSizeCapped(sc, bag, len(bag)+1); len(ex) != want && want != len(bag)+1 {
				t.Fatalf("ExactCover size %d != exact size %d", len(ex), want)
			}
		}
	}
}

// Cache behavior: second identical query hits; greedy and exact results
// coexist in one entry; the capped lower bound is reused only when the cap
// allows; eviction keeps the cache at capacity.
func TestEngineCache(t *testing.T) {
	h := hypergraph.NewHypergraph(6)
	for _, e := range [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}} {
		h.AddEdge(e...)
	}
	eng := NewEngine(h, 8)
	sc := eng.NewScratch()
	bag := []int{0, 1, 2, 3}

	if got := eng.GreedySize(sc, bag, nil); got <= 0 {
		t.Fatalf("greedy size = %d", got)
	}
	s := eng.CacheStats()
	if s.Hits != 0 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("after first query: %+v", s)
	}
	eng.GreedySize(sc, bag, nil)
	if s = eng.CacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after repeat query: %+v", s)
	}
	// Exact on the same bag: same entry, separate field → one more miss.
	exact := eng.ExactSizeCapped(sc, bag, 10)
	if s = eng.CacheStats(); s.Misses != 2 || s.Size != 1 {
		t.Fatalf("after exact query: %+v", s)
	}
	if got := eng.ExactSizeCapped(sc, bag, 10); got != exact {
		t.Fatalf("cached exact = %d, want %d", got, exact)
	}
	if s = eng.CacheStats(); s.Hits != 2 {
		t.Fatalf("exact repeat should hit: %+v", s)
	}
	// A tighter cap than the stored exact value must come back censored.
	if got := eng.ExactSizeCapped(sc, bag, 1); got != 1 {
		t.Fatalf("capped-below-exact = %d, want 1", got)
	}

	// Capped lower bounds: query a bag with cap 1 (minimum is 2), then ask
	// again with cap 1 (hit) and with a larger cap (miss, recompute).
	bag2 := []int{0, 2, 4}
	if got := eng.ExactSizeCapped(sc, bag2, 1); got != 1 {
		t.Fatalf("cap-censored = %d, want 1", got)
	}
	pre := eng.CacheStats()
	if got := eng.ExactSizeCapped(sc, bag2, 1); got != 1 {
		t.Fatalf("cap-censored repeat = %d", got)
	}
	if s = eng.CacheStats(); s.Hits != pre.Hits+1 {
		t.Fatalf("lower-bound reuse should hit: %+v", s)
	}
	if got := eng.ExactSizeCapped(sc, bag2, 5); got < 2 {
		t.Fatalf("true exact = %d, want >= 2", got)
	}
	if got := eng.ExactSizeCapped(sc, bag2, 5); got < 2 {
		t.Fatalf("cached true exact = %d", got)
	}

	// Eviction: flood with distinct bags; size stays at capacity.
	for v := 0; v < 6; v++ {
		for w := v + 1; w < 6; w++ {
			eng.GreedySize(sc, []int{v, w}, nil)
		}
	}
	if s = eng.CacheStats(); s.Size > 8 {
		t.Fatalf("cache exceeded capacity: %+v", s)
	}
	// Disabled cache still answers correctly.
	off := NewEngine(h, 0)
	sco := off.NewScratch()
	if got := off.GreedySize(sco, bag, nil); got != eng.GreedySize(sc, bag, nil) {
		t.Fatalf("cache-off greedy = %d", got)
	}
	if s = off.CacheStats(); s.Hits != 0 || s.Misses != 0 || s.Size != 0 {
		t.Fatalf("cache-off stats: %+v", s)
	}
}

// An uncoverable bag (isolated vertex) is remembered as such for both modes.
func TestEngineUncoverable(t *testing.T) {
	h := hypergraph.NewHypergraph(4)
	h.AddEdge(0, 1)
	eng := NewEngine(h, -1)
	sc := eng.NewScratch()
	bag := []int{0, 3} // vertex 3 is in no edge
	if got := eng.GreedySize(sc, bag, nil); got != -1 {
		t.Fatalf("greedy on uncoverable = %d", got)
	}
	if got := eng.ExactSizeCapped(sc, bag, 5); got != -1 {
		t.Fatalf("exact on uncoverable = %d", got)
	}
	s := eng.CacheStats()
	if s.Hits != 1 {
		t.Fatalf("exact should reuse greedy's uncoverable verdict: %+v", s)
	}
	if eng.GreedyCover(bag, nil) != nil || eng.ExactCover(bag) != nil {
		t.Fatal("covers of uncoverable bag should be nil")
	}
	if got := eng.GreedySize(sc, nil, nil); got != 0 {
		t.Fatalf("empty bag greedy = %d", got)
	}
	if got := eng.ExactSizeCapped(sc, nil, 3); got != 0 {
		t.Fatalf("empty bag exact = %d", got)
	}
}

// The engine must be shareable across goroutines, each with its own Scratch.
func TestEngineConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := randomHypergraph(rng, 30, 25, 5)
	eng := NewEngine(h, 64) // small capacity to exercise eviction under load
	bags := make([][]int, 50)
	for i := range bags {
		bags[i] = randomBag(rng, 30)
	}
	// Ground truth computed serially first.
	want := make([]int, len(bags))
	scSerial := eng.NewScratch()
	for i, bag := range bags {
		want[i] = eng.GreedySize(scSerial, bag, nil)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sc := eng.NewScratch()
			for rep := 0; rep < 40; rep++ {
				for i, bag := range bags {
					if got := eng.GreedySize(sc, bag, nil); got != want[i] {
						t.Errorf("concurrent GreedySize(%v) = %d, want %d", bag, got, want[i])
						return
					}
					if rep%3 == 0 {
						eng.ExactSizeCapped(sc, bag, 4)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// Member views attribute hits/misses to the member that queried while the
// root keeps the global truth, and views share the root's memo cache.
func TestEngineMemberAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := randomHypergraph(rng, 24, 30, 4)
	root := NewEngine(h, -1)
	a, b := root.Member(), root.Member()
	if bb := b.Member(); bb.parent != root {
		t.Fatal("Member of a member must attach to the root")
	}

	bag := randomBag(rng, 24)
	sca, scb := a.NewScratch(), b.NewScratch()
	// First query through a misses; the identical query through b must hit
	// the shared cache — attributed to b.
	a.GreedySize(sca, bag, nil)
	b.GreedySize(scb, bag, nil)
	sa, sb := a.CacheStats(), b.CacheStats()
	if sa.Misses != 1 || sa.Hits != 0 {
		t.Fatalf("member a stats = %+v, want 1 miss", sa)
	}
	if sb.Hits != 1 || sb.Misses != 0 {
		t.Fatalf("member b stats = %+v, want 1 shared-cache hit", sb)
	}

	// Hammer concurrently; member counters must sum to the root's.
	var wg sync.WaitGroup
	for _, m := range []*Engine{a, b} {
		wg.Add(1)
		go func(m *Engine) {
			defer wg.Done()
			sc := m.NewScratch()
			r := rand.New(rand.NewSource(int64(len(m.edgeBits))))
			for i := 0; i < 400; i++ {
				bag := randomBag(r, 24)
				m.GreedySize(sc, bag, nil)
				m.ExactSizeCapped(sc, bag, 3)
			}
		}(m)
	}
	wg.Wait()
	sa, sb = a.CacheStats(), b.CacheStats()
	sr := root.CacheStats()
	if sa.Hits+sb.Hits != sr.Hits || sa.Misses+sb.Misses != sr.Misses {
		t.Fatalf("member traffic (%d+%d hits, %d+%d misses) does not sum to root (%d hits, %d misses)",
			sa.Hits, sb.Hits, sa.Misses, sb.Misses, sr.Hits, sr.Misses)
	}
	if sr.Hits+sr.Misses == 0 {
		t.Fatal("no cache traffic recorded at all")
	}
	// Shared-cache metadata is visible through views.
	if sa.Size != sr.Size {
		t.Fatalf("view cache size %d != root %d", sa.Size, sr.Size)
	}
}
