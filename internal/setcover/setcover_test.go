package setcover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasic(t *testing.T) {
	universe := []int{1, 2, 3, 4, 5}
	sets := [][]int{{1, 2, 3}, {2, 4}, {3, 4}, {4, 5}}
	c := Greedy(universe, sets, nil)
	if c == nil || !Covers(universe, sets, c) {
		t.Fatalf("greedy cover %v does not cover", c)
	}
	if len(c) != 2 { // {1,2,3} + {4,5}
		t.Fatalf("greedy size = %d, want 2", len(c))
	}
}

func TestGreedyUncoverable(t *testing.T) {
	if Greedy([]int{1, 2}, [][]int{{1}}, nil) != nil {
		t.Fatal("expected nil for uncoverable universe")
	}
	if GreedySize([]int{1, 2}, [][]int{{1}}, nil) != -1 {
		t.Fatal("expected -1")
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	c := Greedy(nil, [][]int{{1}}, nil)
	if c == nil || len(c) != 0 {
		t.Fatalf("empty universe should give empty cover, got %v", c)
	}
}

// The classic greedy-suboptimal instance: universe 1..6, sets {1,2,3,4},
// {1,2,5}, {3,4,6}, {5,6}. Greedy takes the big set then needs two more
// (3 sets); optimum is {1,2,5} + {3,4,6} (2 sets).
func TestExactBeatsGreedy(t *testing.T) {
	universe := []int{1, 2, 3, 4, 5, 6}
	sets := [][]int{{1, 2, 3, 4}, {1, 2, 5}, {3, 4, 6}, {5, 6}}
	g := Greedy(universe, sets, nil)
	e := Exact(universe, sets)
	if !Covers(universe, sets, e) {
		t.Fatalf("exact cover %v does not cover", e)
	}
	if len(e) != 2 {
		t.Fatalf("exact size = %d, want 2", len(e))
	}
	if len(g) < len(e) {
		t.Fatalf("greedy %d beat exact %d", len(g), len(e))
	}
}

func TestExactUncoverable(t *testing.T) {
	if Exact([]int{1, 9}, [][]int{{1}, {2}}) != nil {
		t.Fatal("expected nil for uncoverable")
	}
	if ExactSize([]int{9}, nil) != -1 {
		t.Fatal("expected -1")
	}
}

func TestExactSingleSet(t *testing.T) {
	e := Exact([]int{3, 7}, [][]int{{3, 7, 9}})
	if len(e) != 1 || e[0] != 0 {
		t.Fatalf("got %v", e)
	}
}

func TestExactDuplicateUniverseElements(t *testing.T) {
	e := Exact([]int{1, 1, 2, 2}, [][]int{{1, 2}})
	if len(e) != 1 {
		t.Fatalf("got %v", e)
	}
}

func TestExactSizeCapped(t *testing.T) {
	universe := []int{1, 2, 3, 4, 5, 6}
	sets := [][]int{{1, 2, 3, 4}, {1, 2, 5}, {3, 4, 6}, {5, 6}} // optimum 2
	if got := ExactSizeCapped(universe, sets, 10); got != 2 {
		t.Fatalf("cap 10: got %d, want 2", got)
	}
	if got := ExactSizeCapped(universe, sets, 3); got != 2 {
		t.Fatalf("cap 3: got %d, want 2", got)
	}
	if got := ExactSizeCapped(universe, sets, 2); got != 2 {
		t.Fatalf("cap 2: got %d, want 2 (optimum == cap reports cap)", got)
	}
	if got := ExactSizeCapped(universe, sets, 1); got != 1 {
		t.Fatalf("cap 1: got %d, want 1 (capped)", got)
	}
	if got := ExactSizeCapped([]int{9}, sets, 3); got != -1 {
		t.Fatalf("uncoverable: got %d, want -1", got)
	}
	if got := ExactSizeCapped(nil, sets, 3); got != 0 {
		t.Fatalf("empty universe: got %d, want 0", got)
	}
}

func TestExactSizeCappedPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactSizeCapped([]int{1}, [][]int{{1}}, 0)
}

// Property: capped result equals min(exact, cap) on random instances.
func TestExactSizeCappedMatchesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Intn(7)
		universe := make([]int, nu)
		for i := range universe {
			universe[i] = i
		}
		ns := 1 + rng.Intn(7)
		sets := make([][]int, ns)
		for i := range sets {
			k := 1 + rng.Intn(nu)
			seen := map[int]struct{}{}
			for len(seen) < k {
				seen[rng.Intn(nu)] = struct{}{}
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		exact := ExactSize(universe, sets)
		for cap := 1; cap <= nu+1; cap++ {
			got := ExactSizeCapped(universe, sets, cap)
			if exact < 0 {
				if got != -1 {
					return false
				}
				continue
			}
			want := exact
			if want > cap {
				want = cap
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestKSetCoverLowerBound(t *testing.T) {
	for _, tc := range []struct{ q, k, want int }{
		{0, 3, 0},
		{-1, 3, 0},
		{1, 3, 1},
		{3, 3, 1},
		{4, 3, 2},
		{10, 3, 4},
		{10, 1, 10},
	} {
		if got := KSetCoverLowerBound(tc.q, tc.k); got != tc.want {
			t.Errorf("KSetCoverLowerBound(%d,%d) = %d, want %d", tc.q, tc.k, got, tc.want)
		}
	}
}

func TestKSetCoverLowerBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	KSetCoverLowerBound(3, 0)
}

func TestCovers(t *testing.T) {
	sets := [][]int{{1, 2}, {3}}
	if !Covers([]int{1, 3}, sets, []int{0, 1}) {
		t.Fatal("should cover")
	}
	if Covers([]int{1, 3}, sets, []int{0}) {
		t.Fatal("should not cover")
	}
	if Covers([]int{1}, sets, []int{5}) {
		t.Fatal("out-of-range chosen index should not cover")
	}
}

// brute computes the true minimum cover size by enumerating all subsets.
func brute(universe []int, sets [][]int) int {
	best := -1
	for mask := 0; mask < 1<<len(sets); mask++ {
		var chosen []int
		for i := range sets {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, i)
			}
		}
		if Covers(universe, sets, chosen) {
			if best < 0 || len(chosen) < best {
				best = len(chosen)
			}
		}
	}
	return best
}

// Property: Exact matches brute force on random small instances, and greedy
// is never better than exact while always covering when coverable.
func TestExactMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Intn(8)
		universe := make([]int, nu)
		for i := range universe {
			universe[i] = i
		}
		ns := 1 + rng.Intn(8)
		sets := make([][]int, ns)
		for i := range sets {
			k := 1 + rng.Intn(nu)
			seen := map[int]struct{}{}
			for len(seen) < k {
				seen[rng.Intn(nu)] = struct{}{}
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		want := brute(universe, sets)
		e := Exact(universe, sets)
		if want < 0 {
			return e == nil
		}
		if e == nil || len(e) != want || !Covers(universe, sets, e) {
			return false
		}
		g := Greedy(universe, sets, rng)
		return g != nil && Covers(universe, sets, g) && len(g) >= len(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the k-set-cover bound never exceeds the exact cover size when
// k is the largest set size.
func TestLowerBoundSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu := 1 + rng.Intn(7)
		universe := make([]int, nu)
		for i := range universe {
			universe[i] = i
		}
		ns := 1 + rng.Intn(6)
		sets := make([][]int, ns)
		maxK := 1
		for i := range sets {
			k := 1 + rng.Intn(nu)
			if k > maxK {
				maxK = k
			}
			seen := map[int]struct{}{}
			for len(seen) < k {
				seen[rng.Intn(nu)] = struct{}{}
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		e := Exact(universe, sets)
		if e == nil {
			return true
		}
		return KSetCoverLowerBound(nu, maxK) <= len(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
