//go:build !race

package setcover

// raceDetectorEnabled reports whether the test binary was built with -race.
const raceDetectorEnabled = false
