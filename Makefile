GO ?= go

.PHONY: all build vet staticcheck test race check par-smoke portfolio-smoke daemon-smoke latency-smoke query-smoke attr-smoke bench-smoke bench-diff trace-smoke tracestat-smoke fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs the deeper linter when the binary is on PATH and falls
# back to `go vet` otherwise, so `make check` works on a bare toolchain and
# tightens automatically on machines that have staticcheck installed.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to $(GO) vet ./..."; $(GO) vet ./...; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: static analysis, a clean build, the
# test suite under the race detector (which subsumes plain `go test`), a
# smoke run of the evaluator benchmarks with a regression diff against the
# committed report, and trace emission + analysis smoke runs.
check: vet staticcheck build race par-smoke portfolio-smoke daemon-smoke latency-smoke query-smoke attr-smoke bench-smoke bench-diff trace-smoke tracestat-smoke

# par-smoke is the quick parallel-correctness gate: one mid-size instance
# through parallel BB-ghw and one through parallel det-k-decomp, Workers=4,
# under the race detector, asserting the width matches the serial engines.
# (`make race` runs the full parallel suites; this target is the fast,
# targeted re-check.)
par-smoke:
	$(GO) test -race -count=1 -run 'TestParallel.*Smoke' ./internal/search/ ./internal/htd/

# portfolio-smoke is the racing-mode gate: the full solver portfolio on two
# seed instances under the race detector, asserting the race's width is no
# worse than the best single member given the same budget and that the
# merged anytime timeline stays monotone.
portfolio-smoke:
	$(GO) test -race -count=1 -run 'TestPortfolioSmoke' ./internal/core/

# daemon-smoke exercises the decomposed binary end to end over a real port:
# build it, start it, POST examples/instances/cycle6.hg and assert the exact
# width (2), verify a retry hits the result cache and the health/metrics
# endpoints answer, then SIGTERM-drain (including with a long run still in
# flight — the client must get its typed degraded answer) and assert a clean
# exit. (`make race` runs the in-process chaos harness in internal/server;
# this target is the process-boundary gate.)
daemon-smoke:
	$(GO) test -race -count=1 -run 'TestDaemonSmoke' ./cmd/decomposed/

# latency-smoke is the request-lifecycle observability gate: start the
# daemon with tracing, access logging and the slow ring enabled, fire a
# mixed burst (exact, cached, rejected, degraded), and assert the /metrics
# latency histograms are populated with P50/P95/P99 summaries, /debug/slow
# retained the outlier with its event trace, the access log has one JSON
# line per request, the drain dumps the slow ring, and tracestat summary on
# the daemon trace prints a per-phase latency breakdown.
latency-smoke:
	$(GO) test -race -count=1 -run 'TestLatencySmoke' ./cmd/decomposed/

# query-smoke is the compiled-plan serving gate: the daemon's /query
# endpoint end to end over a real port — CSP in, compiled join-tree plan,
# solve/count/enumerate answers out, plan-cache hit on the retry, and the
# hypertree_query_* metric families populated.
query-smoke:
	$(GO) test -race -count=1 -run 'TestQuerySmoke' ./cmd/decomposed/

# attr-smoke is the cost-accounting gate: a portfolio request through the
# live daemon must come back with a balanced attribution ledger in its
# envelope (member nodes summing to the global count, the winner named),
# the hypertree_portfolio_member_* metric families must reflect it, and
# tracestat attr on the daemon's trace must render the per-algorithm
# contribution table.
attr-smoke:
	$(GO) test -race -count=1 -run 'TestAttributionSmoke' ./cmd/decomposed/

# bench-smoke reruns the ghw evaluator microbenchmarks (benchstat-compatible
# output) into a scratch report and validates both it and the committed
# BENCH_ghw.json. It is a smoke test: numbers vary by machine; only the
# report shape and width agreement are checked. The scratch report is left
# on disk for bench-diff, which removes it.
bench-smoke:
	$(GO) run ./cmd/experiments -bench-json -bench-out BENCH_ghw.smoke.json
	$(GO) run ./cmd/experiments -bench-check BENCH_ghw.smoke.json
	$(GO) run ./cmd/experiments -bench-check BENCH_ghw.json

# bench-diff gates on the smoke report not regressing against the committed
# BENCH_ghw.json (exit 1 on regression). The threshold is deliberately loose:
# the committed numbers come from a different machine, and this catches
# order-of-magnitude regressions (a lost cache, an accidental O(n^2)), not
# percent-level drift — benchstat on two local reports does that.
bench-diff: bench-smoke
	$(GO) run ./cmd/experiments -bench-diff BENCH_ghw.json -bench-diff-threshold 4.0 BENCH_ghw.smoke.json
	rm -f BENCH_ghw.smoke.json

# trace-smoke runs one budgeted search with -trace and validates the JSONL
# event stream against the schema (see OBSERVABILITY.md): per-line JSON,
# known kinds, run boundaries present, anytime-width monotonicity per run.
# The trace is left on disk for tracestat-smoke, which removes it.
trace-smoke:
	$(GO) run ./cmd/decompose -algo bb-ghw -gen grid2d_10 -timeout 5s -trace trace.smoke.jsonl
	$(GO) run ./cmd/decompose -trace-check trace.smoke.jsonl -strict

# tracestat-smoke gates on the analysis pipeline accepting a real trace:
# strict schema validation plus a rendered per-run profile (stall detection,
# cadence, anytime timeline). Exit codes gate; the profile itself is
# informational.
tracestat-smoke: trace-smoke
	$(GO) run ./cmd/tracestat check -strict trace.smoke.jsonl
	$(GO) run ./cmd/tracestat summary trace.smoke.jsonl
	rm -f trace.smoke.jsonl

# fuzz runs each parser fuzzer briefly; extend -fuzztime for real campaigns.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseHG     -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseDIMACS -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseGr     -fuzztime=30s ./internal/hypergraph/

clean:
	$(GO) clean ./...
