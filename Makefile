GO ?= go

.PHONY: all build vet test race check fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: static analysis, a clean build, and
# the test suite under the race detector (which subsumes plain `go test`).
check: vet build race

# fuzz runs each parser fuzzer briefly; extend -fuzztime for real campaigns.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseHG     -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseDIMACS -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseGr     -fuzztime=30s ./internal/hypergraph/

clean:
	$(GO) clean ./...
