GO ?= go

.PHONY: all build vet test race check bench-smoke trace-smoke fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: static analysis, a clean build, the
# test suite under the race detector (which subsumes plain `go test`), and a
# smoke run of the evaluator benchmarks.
check: vet build race bench-smoke trace-smoke

# bench-smoke reruns the ghw evaluator microbenchmarks (benchstat-compatible
# output) into a scratch report and validates both it and the committed
# BENCH_ghw.json. It is a smoke test: numbers vary by machine; only the
# report shape and width agreement are checked.
bench-smoke:
	$(GO) run ./cmd/experiments -bench-json -bench-out BENCH_ghw.smoke.json
	$(GO) run ./cmd/experiments -bench-check BENCH_ghw.smoke.json
	$(GO) run ./cmd/experiments -bench-check BENCH_ghw.json
	rm -f BENCH_ghw.smoke.json

# trace-smoke runs one budgeted search with -trace and validates the JSONL
# event stream against the schema (see OBSERVABILITY.md): per-line JSON,
# known kinds, run boundaries present, anytime-width monotonicity per run.
trace-smoke:
	$(GO) run ./cmd/decompose -algo bb-ghw -gen grid2d_10 -timeout 5s -trace trace.smoke.jsonl
	$(GO) run ./cmd/decompose -trace-check trace.smoke.jsonl
	rm -f trace.smoke.jsonl

# fuzz runs each parser fuzzer briefly; extend -fuzztime for real campaigns.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseHG     -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseDIMACS -fuzztime=30s ./internal/hypergraph/
	$(GO) test -run=^$$ -fuzz=FuzzParseGr     -fuzztime=30s ./internal/hypergraph/

clean:
	$(GO) clean ./...
