// Package hypertree is a Go library for tree decompositions and generalized
// hypertree decompositions (GHDs) of graphs and hypergraphs, reproducing the
// algorithm suite of Schafhauser's "New Heuristic Methods for Tree
// Decompositions and Generalized Hypertree Decompositions" (TU Wien, 2006;
// the companion empirical work to the PODS 2007 line "Generalized hypertree
// decompositions: NP-hardness and tractable variants").
//
// The implementation lives under internal/; the public surface for
// downstream use is internal/core.Decompose plus the data structures in
// internal/hypergraph and internal/decomp. See README.md for the
// architecture overview and EXPERIMENTS.md for the reproduced evaluation.
package hypertree
