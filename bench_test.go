package hypertree

// One benchmark per thesis evaluation table. Each benchmark regenerates its
// table at the smoke scale per iteration and reports the number of table
// rows produced; run cmd/experiments for the full, human-readable tables at
// larger scales.
//
//	go test -bench=. -benchmem
//
// The additional ablation benchmarks at the bottom measure the pruning
// machinery's effect on the exact searches (DESIGN.md "ablation benches"),
// and the micro benchmarks cover the hot data structures.

import (
	"math/rand"
	"testing"

	"hypertree/internal/bench"
	"hypertree/internal/bounds"
	"hypertree/internal/elim"
	"hypertree/internal/elimgraph"
	"hypertree/internal/ga"
	"hypertree/internal/hypergraph"
	"hypertree/internal/search"
	"hypertree/internal/setcover"
)

func benchTable(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.Tables[id]
	if !ok {
		b.Fatalf("no runner for table %s", id)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		t := runner(bench.Smoke())
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable5_1(b *testing.B) { benchTable(b, "5.1") }
func BenchmarkTable5_2(b *testing.B) { benchTable(b, "5.2") }
func BenchmarkTable6_1(b *testing.B) { benchTable(b, "6.1") }
func BenchmarkTable6_2(b *testing.B) { benchTable(b, "6.2") }
func BenchmarkTable6_3(b *testing.B) { benchTable(b, "6.3") }
func BenchmarkTable6_4(b *testing.B) { benchTable(b, "6.4") }
func BenchmarkTable6_5(b *testing.B) { benchTable(b, "6.5") }
func BenchmarkTable6_6(b *testing.B) { benchTable(b, "6.6") }
func BenchmarkTable7_1(b *testing.B) { benchTable(b, "7.1") }
func BenchmarkTable7_2(b *testing.B) { benchTable(b, "7.2") }
func BenchmarkTable8_1(b *testing.B) { benchTable(b, "8.1") }
func BenchmarkTable8_2(b *testing.B) { benchTable(b, "8.2") }
func BenchmarkTable9_1(b *testing.B) { benchTable(b, "9.1") }
func BenchmarkTable9_2(b *testing.B) { benchTable(b, "9.2") }

// ---- Ablations: effect of the pruning machinery on the exact searches ----

func benchBBTW(b *testing.B, opts search.Options) {
	g := hypergraph.Queen(5)
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		r := search.BBTreewidth(g, opts)
		if !r.Exact || r.Width != 18 {
			b.Fatalf("queen5 treewidth = %d exact=%v", r.Width, r.Exact)
		}
	}
}

func BenchmarkAblationBBTWFull(b *testing.B) { benchBBTW(b, search.Options{}) }
func BenchmarkAblationBBTWNoPR2(b *testing.B) {
	benchBBTW(b, search.Options{DisablePR2: true})
}
func BenchmarkAblationBBTWNoReductions(b *testing.B) {
	benchBBTW(b, search.Options{DisableReductions: true})
}
func BenchmarkAblationBBTWNoNodeLB(b *testing.B) {
	benchBBTW(b, search.Options{DisableNodeLB: true})
}
func BenchmarkAblationBBTWPlain(b *testing.B) {
	benchBBTW(b, search.Options{DisablePR2: true, DisableReductions: true, DisableNodeLB: true})
}

func benchBBGHW(b *testing.B, opts search.Options) {
	// grid2d_6 closes in well under a second even with pruning disabled;
	// larger grids without the node lower bound run essentially unbounded.
	h := hypergraph.Grid2D(6)
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		r := search.BBGHW(h, opts)
		if !r.Exact {
			b.Fatalf("grid2d_6 not closed")
		}
	}
}

func BenchmarkAblationBBGHWFull(b *testing.B) { benchBBGHW(b, search.Options{}) }
func BenchmarkAblationBBGHWNoPR2(b *testing.B) {
	benchBBGHW(b, search.Options{DisablePR2: true})
}
func BenchmarkAblationBBGHWNoNodeLB(b *testing.B) {
	benchBBGHW(b, search.Options{DisableNodeLB: true})
}

// ---- Micro benchmarks of the hot paths ----

func BenchmarkElimGraphEliminateRestore(b *testing.B) {
	g := hypergraph.Queen(8)
	e := elimgraph.New(g)
	order := rand.New(rand.NewSource(1)).Perm(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range order {
			e.Eliminate(v)
		}
		e.Reset()
	}
}

func BenchmarkWidthEvaluation(b *testing.B) {
	g := hypergraph.Queen(8)
	e := elimgraph.New(g)
	order := rand.New(rand.NewSource(1)).Perm(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elim.Width(e, order)
	}
}

func BenchmarkGHWEvaluationGreedy(b *testing.B) {
	h := hypergraph.Grid2D(14)
	ev := elim.NewGHWEvaluator(h, false, rand.New(rand.NewSource(1)))
	order := rand.New(rand.NewSource(2)).Perm(h.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Width(order)
	}
}

func BenchmarkGHWEvaluationExact(b *testing.B) {
	h := hypergraph.Grid2D(10)
	ev := elim.NewGHWEvaluator(h, true, nil)
	order := rand.New(rand.NewSource(2)).Perm(h.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Width(order)
	}
}

func BenchmarkGreedySetCover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	universe := make([]int, 40)
	for i := range universe {
		universe[i] = i
	}
	sets := make([][]int, 60)
	for i := range sets {
		for j := 0; j < 5; j++ {
			sets[i] = append(sets[i], rng.Intn(40))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.Greedy(universe, sets, rng)
	}
}

func BenchmarkMinorMinWidth(b *testing.B) {
	g := hypergraph.Queen(8)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bounds.MinorMinWidth(g, rng)
	}
}

func BenchmarkMinFillOrdering(b *testing.B) {
	g := hypergraph.Queen(8)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elim.MinFillOrdering(g, rng)
	}
}

func BenchmarkGAGeneration(b *testing.B) {
	g := hypergraph.Queen(6)
	cfg := ga.Config{
		PopulationSize: 50, CrossoverRate: 1, MutationRate: 0.3,
		TournamentSize: 3, MaxIterations: 10,
		Crossover: ga.POS, Mutation: ga.ISM,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		ga.Treewidth(g, cfg)
	}
}

func BenchmarkCrossoverOperators(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p1 := rng.Perm(200)
	p2 := rng.Perm(200)
	for _, op := range ga.CrossoverOps {
		op := op
		b.Run(op.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ga.Crossover(op, p1, p2, rng)
			}
		})
	}
}

func BenchmarkMutationOperators(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range ga.MutationOps {
		op := op
		b.Run(op.String(), func(b *testing.B) {
			p := rng.Perm(200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ga.Mutate(op, p, rng)
			}
		})
	}
}
