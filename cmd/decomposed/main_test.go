// Exec-based smoke tests for the daemon binary: build it, run it, hit it
// with real HTTP over a real port, and shut it down with real signals. This
// is the layer the in-process httptest harness in internal/server cannot
// cover — flag wiring, the stdout address announcement, signal handling and
// process exit codes.

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hypertree/internal/hypergraph"
)

// buildDaemon compiles the decomposed binary once per test binary run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "decomposed")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is a running decomposed process plus its announced base URL.
type daemon struct {
	cmd    *exec.Cmd
	url    string
	stdout *bufio.Reader
	tail   bytes.Buffer // everything read from stdout after the address line
}

// startDaemon launches the binary on a kernel-assigned port and parses the
// base URL from the first stdout line.
func startDaemon(t *testing.T, bin string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	rd := bufio.NewReader(pipe)
	line, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("daemon never announced its address: %v", err)
	}
	const prefix = "decomposed: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first stdout line %q", line)
	}
	return &daemon{cmd: cmd, url: strings.TrimSpace(line[len(prefix):]), stdout: rd}
}

// wait drains stdout and returns the process exit code (-1 for a wait
// failure that is not an exit status; callers assert on the code). Uses
// Errorf, not Fatalf, so it is safe from helper goroutines.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	io.Copy(&d.tail, d.stdout)
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Errorf("wait: %v", err)
	return -1
}

// tryPost is the goroutine-safe variant of post: errors come back instead of
// failing the test, so background clients can race the daemon's shutdown.
func (d *daemon) tryPost(query string, body []byte) (int, map[string]any, error) {
	url := d.url + "/decompose"
	if query != "" {
		url += "?" + query
	}
	hr, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer hr.Body.Close()
	var resp map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return hr.StatusCode, nil, err
	}
	return hr.StatusCode, resp, nil
}

func (d *daemon) post(t *testing.T, query string, body []byte) (int, map[string]any) {
	t.Helper()
	status, resp, err := d.tryPost(query, body)
	if err != nil {
		t.Fatalf("POST /decompose?%s: %v", query, err)
	}
	return status, resp
}

// TestDaemonSmoke is the end-to-end happy path the Makefile's daemon-smoke
// target runs: start the daemon, POST a shipped example, get the exact
// width back, drain on SIGTERM, exit clean.
func TestDaemonSmoke(t *testing.T) {
	bin := buildDaemon(t)
	tracePath := filepath.Join(t.TempDir(), "daemon.jsonl")
	d := startDaemon(t, bin, "-workers", "2", "-drain-grace", "5s", "-trace", tracePath)

	payload, err := os.ReadFile(filepath.Join("..", "..", "examples", "instances", "cycle6.hg"))
	if err != nil {
		t.Fatal(err)
	}
	status, resp := d.post(t, "algo=bb-ghw", payload)
	if status != 200 || resp["outcome"] != "exact" || resp["width"] != float64(2) {
		t.Fatalf("cycle6 smoke: status %d, response %v", status, resp)
	}
	// A retry is served from the result cache — idempotent daemon contract.
	if _, resp := d.post(t, "algo=bb-ghw", payload); resp["cached"] != true {
		t.Errorf("retry not cached: %v", resp)
	}
	for _, ep := range []string{"/healthz", "/readyz", "/metrics"} {
		hr, err := http.Get(d.url + ep)
		if err != nil || hr.StatusCode != 200 {
			t.Fatalf("%s: %v %v", ep, hr, err)
		}
		hr.Body.Close()
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("SIGTERM drain exited %d, want 0\nstdout tail:\n%s", code, d.tail.String())
	}
	if !strings.Contains(d.tail.String(), "drained in") {
		t.Errorf("no drain report in stdout:\n%s", d.tail.String())
	}
	// The drain flushed the trace: a valid JSONL stream with the served
	// run's events, each stamped with its request id.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(trace, []byte(`"req":"r000001"`)) {
		t.Errorf("trace not flushed or missing request stamps:\n%.400s", trace)
	}
}

// TestDaemonSmokeDrainInFlight proves the zero-dropped contract across the
// process boundary: a long run is in flight when SIGTERM lands, the grace is
// too short for it to finish, and the client still gets a typed degraded
// answer before the process exits 0.
func TestDaemonSmokeDrainInFlight(t *testing.T) {
	bin := buildDaemon(t)
	d := startDaemon(t, bin, "-workers", "2", "-drain-grace", "300ms")

	var grid bytes.Buffer
	if err := hypergraph.WriteHG(&grid, hypergraph.Grid2D(12)); err != nil {
		t.Fatal(err)
	}
	type answer struct {
		status int
		resp   map[string]any
	}
	got := make(chan answer, 1)
	go func() {
		status, resp, err := d.tryPost("algo=bb-ghw&timeout=30s", grid.Bytes())
		if err != nil {
			t.Errorf("in-flight POST failed: %v", err)
		}
		got <- answer{status, resp}
	}()
	// Wait until the run is actually holding a worker slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hr, err := http.Get(d.url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if strings.Contains(string(body), "hypertree_daemon_inflight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long run never reached in-flight")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-got:
		if a.status != 200 || a.resp["outcome"] != "degraded" || a.resp["stop"] != "canceled" {
			t.Fatalf("drained in-flight run: status %d, response %v", a.status, a.resp)
		}
		if w, ok := a.resp["width"].(float64); !ok || w <= 0 {
			t.Fatalf("drained run lost its anytime width: %v", a.resp)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never answered during drain")
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain with in-flight work exited %d, want 0\nstdout tail:\n%s", code, d.tail.String())
	}
}

// TestDaemonSmokeSecondSignalForcesExit: an operator signaling twice gets an
// immediate exit 2 even though the drain grace has not expired.
func TestDaemonSmokeSecondSignalForcesExit(t *testing.T) {
	bin := buildDaemon(t)
	d := startDaemon(t, bin, "-workers", "1", "-drain-grace", "1h")

	var grid bytes.Buffer
	if err := hypergraph.WriteHG(&grid, hypergraph.Grid2D(12)); err != nil {
		t.Fatal(err)
	}
	// This client's connection dies with the process — errors are expected.
	go d.tryPost("algo=bb-ghw&timeout=1h&nodes=0", grid.Bytes())
	deadline := time.Now().Add(5 * time.Second)
	for {
		hr, err := http.Get(d.url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if strings.Contains(string(body), "hypertree_daemon_inflight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long run never reached in-flight")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the drain start (first line after the address announcement).
	line, err := d.stdout.ReadString('\n')
	if err != nil || !strings.Contains(line, "draining") {
		t.Fatalf("no drain announcement after first signal: %q %v", line, err)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan int, 1)
	go func() { exited <- d.wait(t) }()
	select {
	case code := <-exited:
		if code != 2 {
			t.Fatalf("second signal exited %d, want 2", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
}

// TestAttributionSmoke is the Makefile attr-smoke gate: a portfolio request
// through the live daemon must come back with a balanced attribution ledger
// in its envelope (member nodes summing to the global count, the winner
// named with a winner-role row), the cumulative hypertree_portfolio_member_*
// metric families must reflect it, and tracestat attr on the daemon's
// flushed trace must render the per-algorithm contribution table.
func TestAttributionSmoke(t *testing.T) {
	bin := buildDaemon(t)
	tracePath := filepath.Join(t.TempDir(), "attr.jsonl")
	d := startDaemon(t, bin, "-workers", "2", "-drain-grace", "5s", "-trace", tracePath)

	payload, err := os.ReadFile(filepath.Join("..", "..", "examples", "instances", "cycle6.hg"))
	if err != nil {
		t.Fatal(err)
	}
	status, resp := d.post(t, "algo=portfolio", payload)
	if status != 200 {
		t.Fatalf("portfolio request: status %d, %v", status, resp)
	}

	led, ok := resp["attribution"].(map[string]any)
	if !ok {
		t.Fatalf("envelope has no attribution block: %v", resp)
	}
	if led["portfolio"] != true {
		t.Fatalf("portfolio run's ledger not marked portfolio: %v", led)
	}
	members, _ := led["members"].([]any)
	if len(members) < 2 {
		t.Fatalf("portfolio ledger has %d member rows, want >= 2: %v", len(members), led)
	}
	// The conservation invariant, re-checked from the raw envelope JSON:
	// member nodes sum exactly to the ledger's global count, which is the
	// envelope's own node count.
	var sum float64
	winner, _ := led["winner"].(string)
	winnerRole := ""
	for _, m := range members {
		row := m.(map[string]any)
		n, _ := row["nodes"].(float64)
		sum += n
		if row["algo"] == winner {
			winnerRole, _ = row["role"].(string)
		}
	}
	total, _ := led["total_nodes"].(float64)
	if sum != total || total != resp["nodes"] {
		t.Fatalf("ledger unbalanced: member sum %v, total_nodes %v, envelope nodes %v", sum, total, resp["nodes"])
	}
	if winner == "" || winnerRole != "winner" {
		t.Fatalf("ledger winner %q has role %q, want a winner-role member row", winner, winnerRole)
	}

	hr, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	for _, want := range []string{
		`hypertree_portfolio_member_wins_total{algo="` + winner + `"} 1`,
		"# TYPE hypertree_portfolio_member_nodes_total counter",
		"# TYPE hypertree_portfolio_member_node_share gauge",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain exited %d\nstdout tail:\n%s", code, d.tail.String())
	}

	// The flushed trace carries the attr terminal events, and tracestat attr
	// renders them as the per-algorithm contribution table.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(trace, []byte(`"kind":"attr"`)) {
		t.Fatalf("trace has no attr events:\n%.400s", trace)
	}
	tracestat := filepath.Join(t.TempDir(), "tracestat")
	if out, err := exec.Command("go", "build", "-o", tracestat, "../tracestat").CombinedOutput(); err != nil {
		t.Fatalf("building tracestat: %v\n%s", err, out)
	}
	out, err := exec.Command(tracestat, "attr", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("tracestat attr: %v\n%s", err, out)
	}
	for _, want := range []string{"attribution: 1 runs", "algo", "share", winner} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tracestat attr missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonRejectsNegativeWorkers: flag validation happens before the
// listener opens.
func TestDaemonRejectsNegativeWorkers(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "-3")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("negative -workers: err %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "-workers must be >= 0") {
		t.Fatalf("missing validation message:\n%s", out)
	}
}

// TestLatencySmoke is the Makefile latency-smoke gate: start the daemon
// with tracing, access logging and the slow ring on, fire a mixed burst,
// and assert (1) /metrics exposes populated latency histograms with
// P50/P95/P99 summaries, (2) the access log has one JSON line per request,
// (3) the drain dumps the slowest requests, and (4) tracestat summary on
// the trace prints a sane per-phase breakdown.
func TestLatencySmoke(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "latency.jsonl")
	accessPath := filepath.Join(dir, "access.jsonl")
	d := startDaemon(t, bin, "-workers", "2", "-drain-grace", "5s",
		"-trace", tracePath, "-access-log", accessPath, "-slow", "4")

	payload, err := os.ReadFile(filepath.Join("..", "..", "examples", "instances", "cycle6.hg"))
	if err != nil {
		t.Fatal(err)
	}
	var grid bytes.Buffer
	if err := hypergraph.WriteHG(&grid, hypergraph.Grid2D(12)); err != nil {
		t.Fatal(err)
	}

	// The burst: exact solves, a cache hit, a rejection, a degraded run.
	for i := 0; i < 3; i++ {
		if status, resp := d.post(t, "algo=bb-ghw", payload); status != 200 {
			t.Fatalf("burst solve %d: status %d, %v", i, status, resp)
		}
	}
	if status, _, _ := d.tryPost("algo=nope", payload); status != 400 {
		t.Fatalf("rejection status = %d, want 400", status)
	}
	if status, resp := d.post(t, "algo=bb-ghw&timeout=200ms", grid.Bytes()); status != 200 || resp["outcome"] != "degraded" {
		t.Fatalf("degraded run: status %d, %v", status, resp)
	}

	// Every envelope carries waited_ms and a timings block.
	if _, resp := d.post(t, "algo=bb-ghw", payload); resp["timings"] == nil {
		t.Fatalf("envelope missing timings: %v", resp)
	}

	hr, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	for _, want := range []string{
		`hypertree_daemon_request_seconds_bucket{outcome="exact",le="+Inf"}`,
		`hypertree_daemon_request_seconds_bucket{outcome="degraded",le="+Inf"} 1`,
		"# TYPE hypertree_daemon_queue_wait_seconds histogram",
		`hypertree_daemon_request_latency_seconds{quantile="0.5"}`,
		`hypertree_daemon_request_latency_seconds{quantile="0.95"}`,
		`hypertree_daemon_request_latency_seconds{quantile="0.99"}`,
		`hypertree_daemon_phase_seconds{phase="queue_wait",quantile="0.99"}`,
		`hypertree_daemon_phase_seconds{phase="solve",quantile="0.5"}`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/slow retains the degraded grid run as the slowest, with events.
	hr, err = http.Get(d.url + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	var slowPage struct {
		Retained int `json:"retained"`
		Runs     []struct {
			Req    string           `json:"req"`
			Events []map[string]any `json:"events"`
		} `json:"runs"`
	}
	err = json.NewDecoder(hr.Body).Decode(&slowPage)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if slowPage.Retained == 0 || len(slowPage.Runs[0].Events) == 0 {
		t.Fatalf("/debug/slow retained nothing useful: %+v", slowPage)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("drain exited %d\nstdout tail:\n%s", code, d.tail.String())
	}
	if !strings.Contains(d.tail.String(), "slowest") {
		t.Errorf("drain did not dump the slow ring:\n%s", d.tail.String())
	}

	// The access log: one JSON line per finished request (6 posts above).
	access, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(access), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("access log has %d lines, want 6:\n%s", len(lines), access)
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("access line %d not JSON: %v", i, err)
		}
		if rec["req"] == "" || rec["outcome"] == "" || rec["status"] == nil {
			t.Fatalf("access line %d incomplete: %s", i, line)
		}
	}

	// tracestat summary on the daemon trace prints the per-phase breakdown.
	tracestat := filepath.Join(t.TempDir(), "tracestat")
	if out, err := exec.Command("go", "build", "-o", tracestat, "../tracestat").CombinedOutput(); err != nil {
		t.Fatalf("building tracestat: %v\n%s", err, out)
	}
	out, err := exec.Command(tracestat, "summary", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("tracestat summary: %v\n%s", err, out)
	}
	for _, want := range []string{"requests: ", "latency: p50", "phase means:", "solve="} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tracestat summary missing %q:\n%s", want, out)
		}
	}
}

// TestQuerySmoke is the process-boundary gate for the compiled join-tree
// query endpoint (the Makefile's query-smoke target): start the daemon with
// a bounded plan cache, POST a CSP with a mixed query batch, assert the
// hand-checkable answers, verify the second request serves from the plan
// cache, and confirm the hypertree_query_* metric families are populated.
func TestQuerySmoke(t *testing.T) {
	bin := buildDaemon(t)
	d := startDaemon(t, bin, "-workers", "2", "-plan-cache", "8", "-drain-grace", "5s")

	// A 3-variable boolean not-equal path: exactly two solutions,
	// (0,1,0) and (1,0,1).
	body := []byte(`{
		"csp": {
			"num_vars": 3,
			"domain": [0, 1],
			"var_names": ["x0", "x1", "x2"],
			"constraints": [
				{"scope": [0, 1], "tuples": [[0, 1], [1, 0]]},
				{"scope": [1, 2], "tuples": [[0, 1], [1, 0]]}
			]
		},
		"queries": [
			{"op": "count"},
			{"op": "solve", "assign": {"x0": 0}},
			{"op": "enumerate", "limit": 10}
		]
	}`)
	postQuery := func() map[string]any {
		t.Helper()
		hr, err := http.Post(d.url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		if hr.StatusCode != 200 {
			t.Fatalf("POST /query: status %d", hr.StatusCode)
		}
		var resp map[string]any
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := postQuery()
	results, _ := resp["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v, want 3 entries", resp["results"])
	}
	count := results[0].(map[string]any)
	if count["count"] != float64(2) {
		t.Errorf("count = %v, want 2", count["count"])
	}
	solve := results[1].(map[string]any)
	if sat, _ := solve["sat"].(bool); !sat {
		t.Errorf("pinned solve unsat: %v", solve)
	}
	enum := results[2].(map[string]any)
	if sols, _ := enum["solutions"].([]any); len(sols) != 2 {
		t.Errorf("enumerate = %v, want 2 solutions", enum["solutions"])
	}
	plan, _ := resp["plan"].(map[string]any)
	if plan == nil || plan["cached"] == true {
		t.Fatalf("first plan = %v, want a fresh compile", plan)
	}

	// Decompose once, serve many: the retry hits the plan cache.
	resp2 := postQuery()
	plan2, _ := resp2["plan"].(map[string]any)
	if plan2 == nil || plan2["cached"] != true {
		t.Fatalf("second plan = %v, want a cache hit", plan2)
	}

	hr, err := http.Get(d.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	for _, want := range []string{
		"hypertree_query_plan_cache_hits 1",
		"hypertree_query_plan_cache_misses 1",
		`hypertree_query_queries_total{op="count"} 2`,
		"hypertree_query_request_latency_seconds",
		"hypertree_query_compile_seconds",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("SIGTERM drain exited %d, want 0\nstdout tail:\n%s", code, d.tail.String())
	}
}
