// Command decomposed is the decomposition-as-a-service daemon: a long-lived
// HTTP/JSON server around internal/server that accepts hypergraph payloads,
// runs them on a bounded worker pool under per-request budgets, and degrades
// gracefully — anytime widths at the deadline, typed rejections under
// overload, contained panics, and a drain on SIGTERM that answers every
// in-flight request before exiting.
//
// Usage:
//
//	decomposed -addr :8080
//	decomposed -addr 127.0.0.1:0 -workers 4 -queue 16 -max-timeout 30s
//	decomposed -trace runs.jsonl -drain-grace 10s
//
// The first SIGINT/SIGTERM starts a graceful drain (stop admitting, finish
// or budget-cancel in-flight work, flush the trace) and exits 0; a second
// signal abandons the drain and exits 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hypertree/internal/core"
	"hypertree/internal/obs"
	"hypertree/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth beyond the pool (0 = default, -1 = no queue)")
		maxBytes   = flag.Int64("max-bytes", 0, "request body cap in bytes (0 = default)")
		timeout    = flag.Duration("timeout", 0, "default per-request budget (0 = server default)")
		maxTimeout = flag.Duration("max-timeout", 0, "ceiling on the per-request budget a client can ask for (0 = server default)")
		maxNodes   = flag.Int64("max-nodes", 0, "ceiling on the per-request search-node budget (0 = unlimited)")
		cacheCap   = flag.Int("cache", 0, "exact-result cache capacity in entries (0 = default, -1 = disabled)")
		planCap    = flag.Int("plan-cache", 0, "compiled-plan cache capacity in entries for /query (0 = default, -1 = disabled)")
		algo       = flag.String("algo", "", "default algorithm when the request names none (empty = portfolio)")
		tracePath  = flag.String("trace", "", "append every served run's instrumentation events as JSONL to this file")
		accessPath = flag.String("access-log", "", "append one JSON line per finished request to this file (- = stdout)")
		slowN      = flag.Int("slow", 0, "slowest-requests ring size for /debug/slow and the drain dump (0 = default, -1 = disabled)")
		drainGrace = flag.Duration("drain-grace", 15*time.Second, "how long a drain lets in-flight runs finish before canceling their budgets")
	)
	flag.Parse()

	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	var defaultAlgo core.Algorithm
	if *algo != "" {
		a, err := core.ParseAlgorithm(*algo)
		if err != nil {
			fatal(err)
		}
		defaultAlgo = a
	}

	var trace *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		trace = obs.NewJSONLWriter(f)
	}
	var accessLog *os.File
	if *accessPath == "-" {
		accessLog = os.Stdout
	} else if *accessPath != "" {
		f, err := os.Create(*accessPath)
		if err != nil {
			fatal(err)
		}
		accessLog = f
	}

	cfg := server.Config{
		Workers:           core.ClampWorkers(*workers),
		QueueDepth:        *queue,
		MaxRequestBytes:   *maxBytes,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxNodes:          *maxNodes,
		CacheCapacity:     *cacheCap,
		PlanCacheCapacity: *planCap,
		Algorithm:         defaultAlgo,
		SlowN:             *slowN,
	}
	if trace != nil {
		// Assign only a live writer: a nil *JSONLWriter boxed into the
		// Recorder interface would look non-nil to the server.
		cfg.Trace = trace
	}
	if accessLog != nil {
		// Same typed-nil discipline as the trace writer above.
		cfg.AccessLog = accessLog
	}
	srv := server.New(cfg)

	// Listen before announcing, so "-addr :0" callers (tests, supervisors)
	// can read the actual port from the first stdout line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("decomposed: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First signal: graceful drain. Second signal: give up immediately —
	// the operator asked twice, something is stuck.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("decomposed: %v: draining (grace %v; signal again to force exit)\n", sig, *drainGrace)
	}
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "decomposed: second signal, abandoning drain")
		os.Exit(2)
	}()

	rep := srv.Drain(*drainGrace)
	// The listener closes only after the drain, so every admitted request
	// keeps its connection until its response is written.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "decomposed: shutdown:", err)
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			fatal(fmt.Errorf("writing trace %s: %w", *tracePath, err))
		}
	}
	if accessLog != nil && accessLog != os.Stdout {
		if err := accessLog.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "decomposed: closing access log:", err)
		}
	}
	// Dump the slowest retained requests: the last chance to see why the
	// tail was slow once the process is gone.
	if slow := srv.SlowRuns(); len(slow) > 0 {
		fmt.Printf("decomposed: slowest %d requests this run:\n", len(slow))
		for _, sr := range slow {
			fmt.Printf("  %s [%s] %s: %v total, %v queued, %d events\n",
				sr.Req, sr.Algo, sr.Outcome,
				sr.Elapsed.Round(time.Millisecond), sr.QueueWait.Round(time.Millisecond),
				len(sr.Events))
		}
	}
	how := "all in-flight requests finished"
	if rep.Forced {
		how = "grace expired, in-flight budgets canceled (requests still answered)"
	}
	fmt.Printf("decomposed: drained in %v (%s)\n", rep.Waited.Round(time.Millisecond), how)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "decomposed:", err)
	os.Exit(1)
}
