package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hypertree/internal/budget/faultinject"
	"hypertree/internal/core"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
	"hypertree/internal/search"
)

// writeTrace records a real bb-ghw run on a small grid into a JSONL file.
func writeTrace(t *testing.T, path string, opts search.Options) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	opts.Recorder = w
	search.BBGHW(hypergraph.Grid2D(6), opts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestSummaryOnRealTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	writeTrace(t, trace, search.Options{Seed: 1})
	code, out, errw := runCLI(t, "summary", trace)
	if code != 0 {
		t.Fatalf("summary exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"run bb-ghw", "result: width", "anytime:", "progress: longest gap", "events:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// JSON mode emits a parseable array.
	code, out, _ = runCLI(t, "summary", "-json", trace)
	if code != 0 || !strings.HasPrefix(strings.TrimSpace(out), "[") {
		t.Fatalf("json summary wrong (exit %d):\n%s", code, out)
	}
}

// TestSummaryFlagsFaultInjectedStall is the acceptance test for the stall
// detector: a run hung mid-flight by fault injection must show up as STALL
// in tracestat summary, while the same run unhung must not.
func TestSummaryFlagsFaultInjectedStall(t *testing.T) {
	// The instance solves in well under a second even on a loaded machine,
	// but the exact duration varies, so the gap threshold is explicit: far
	// above any healthy run of this instance, comfortably below the
	// injected hang.
	const stallGap = "-stall-gap=2s"
	dir := t.TempDir()
	healthy := filepath.Join(dir, "healthy.jsonl")
	writeTrace(t, healthy, search.Options{Seed: 1})
	code, out, _ := runCLI(t, "summary", stallGap, healthy)
	if code != 0 {
		t.Fatalf("summary exit %d", code)
	}
	if strings.Contains(out, "STALL") {
		t.Fatalf("healthy run flagged as stalled:\n%s", out)
	}

	// Hang the run at its first budget checkpoint. All the search's
	// improvements land in the first few milliseconds on this instance, so
	// the injected sleep dominates the run's elapsed time without any
	// progress events inside it — the stall signature.
	defer faultinject.Reset()
	faultinject.Arm(faultinject.SiteCheckpoint, 1, func() { time.Sleep(2500 * time.Millisecond) })
	hung := filepath.Join(dir, "hung.jsonl")
	writeTrace(t, hung, search.Options{Seed: 1})
	code, out, _ = runCLI(t, "summary", stallGap, hung)
	if code != 0 {
		t.Fatalf("summary exit %d", code)
	}
	if !strings.Contains(out, "STALL") {
		t.Fatalf("fault-injected hung run not flagged as stalled:\n%s", out)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.jsonl")
	if err := os.WriteFile(old, []byte(syntheticRun("bb-ghw", 4, 100_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	same := filepath.Join(dir, "same.jsonl")
	if err := os.WriteFile(same, []byte(syntheticRun("bb-ghw", 4, 110_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}
	worse := filepath.Join(dir, "worse.jsonl")
	if err := os.WriteFile(worse, []byte(syntheticRun("bb-ghw", 5, 400_000_000)), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCLI(t, "compare", old, same)
	if code != 0 || !strings.Contains(out, "ok") {
		t.Fatalf("near-identical traces flagged (exit %d):\n%s", code, out)
	}
	code, out, errw := runCLI(t, "compare", old, worse)
	if code != 1 {
		t.Fatalf("regression exit = %d, want 1; stderr: %s", code, errw)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "width 4 -> 5") {
		t.Fatalf("regression report wrong:\n%s", out)
	}
}

func syntheticRun(algo string, width int, elapsedNS int64) string {
	var b strings.Builder
	b.WriteString(`{"kind":"algo_start","t_ns":0,"algo":"` + algo + `"}` + "\n")
	b.WriteString(`{"kind":"improve","t_ns":1000000,"width":` + itoa(width) + `}` + "\n")
	b.WriteString(`{"kind":"algo_stop","t_ns":` + itoa64(elapsedNS) + `,"algo":"` + algo + `","width":` + itoa(width) + `}` + "\n")
	return b.String()
}

func TestCheckSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	writeTrace(t, good, search.Options{Seed: 1})
	if code, out, _ := runCLI(t, "check", good); code != 0 || !strings.Contains(out, "ok:") {
		t.Fatalf("valid trace rejected (exit %d):\n%s", code, out)
	}
	// bb-ghw traces are single-threaded, so strict mode must pass too.
	if code, _, errw := runCLI(t, "check", "-strict", good); code != 0 {
		t.Fatalf("strict check of single-threaded trace failed: %s", errw)
	}

	unknown := filepath.Join(dir, "unknown.jsonl")
	content := `{"kind":"algo_start","t_ns":0,"algo":"x"}` + "\n" +
		`{"kind":"mystery","t_ns":1}` + "\n" +
		`{"kind":"algo_stop","t_ns":2,"algo":"x"}` + "\n"
	if err := os.WriteFile(unknown, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "check", unknown); code != 0 || !strings.Contains(out, "1 unknown kinds") {
		t.Fatalf("default check should tolerate unknown kinds (exit %d):\n%s", code, out)
	}
	if code, _, errw := runCLI(t, "check", "-strict", unknown); code != 1 || !strings.Contains(errw, "INVALID") {
		t.Fatalf("strict check should reject unknown kinds (exit %d): %s", code, errw)
	}
}

// writeLedgerTrace records a real serial core.Decompose run — whose tail
// emits the one-member resource ledger as attr events — into a JSONL file.
func writeLedgerTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	if _, err := core.Decompose(hypergraph.Grid2D(5), core.Options{
		Algorithm: core.AlgBBGHW, Seed: 1, Recorder: w,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAttrSubcommand checks the attribution report end to end on a real
// ledger-bearing trace: the table renders the per-algorithm rows, JSON mode
// parses, compare mode diffs two traces, and a pre-ledger trace is called
// out rather than silently reporting nothing.
func TestAttrSubcommand(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "ledger.jsonl")
	writeLedgerTrace(t, trace)

	code, out, errw := runCLI(t, "attr", trace)
	if code != 0 {
		t.Fatalf("attr exit %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"attribution: 1 runs", "algo", "share", "bb-ghw", "100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attr report missing %q:\n%s", want, out)
		}
	}

	code, out, _ = runCLI(t, "attr", "-json", trace)
	if code != 0 || !strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Fatalf("json attr wrong (exit %d):\n%s", code, out)
	}

	// Compare a trace against itself: identical shares, no regression.
	code, out, errw = runCLI(t, "attr", trace, trace)
	if code != 0 {
		t.Fatalf("self-compare exit %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "share") || !strings.Contains(out, "ok") {
		t.Fatalf("self-compare output:\n%s", out)
	}

	// A trace from a pre-ledger writer (plain search run, no attr events)
	// must be reported as such, not rendered as an empty table.
	old := filepath.Join(dir, "preledger.jsonl")
	writeTrace(t, old, search.Options{Seed: 1})
	if code, _, errw := runCLI(t, "attr", old); code != 1 || !strings.Contains(errw, "no attribution events") {
		t.Fatalf("pre-ledger trace exit %d: %s", code, errw)
	}
}

func TestUsageAndBadArgs(t *testing.T) {
	if code, _, errw := runCLI(t); code != 2 || !strings.Contains(errw, "usage:") {
		t.Fatalf("no-args exit %d: %s", code, errw)
	}
	if code, _, _ := runCLI(t, "bogus"); code != 2 {
		t.Fatalf("unknown command exit %d", code)
	}
	if code, _, _ := runCLI(t, "summary", "/nonexistent/trace.jsonl"); code != 2 {
		t.Fatalf("missing file exit %d", code)
	}
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
