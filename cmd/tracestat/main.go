// Command tracestat analyzes JSONL instrumentation traces written by
// cmd/decompose -trace: per-run anytime profiles with stall detection
// (summary), cross-trace regression diffs (compare), and schema validation
// (check). See OBSERVABILITY.md for the trace format and workflow.
//
// Exit codes: 0 success, 1 regression or invalid trace, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hypertree/internal/obs"
	"hypertree/internal/obs/analyze"
)

const usage = `usage: tracestat <command> [flags] <trace.jsonl>...

commands:
  summary [-json] [-stall-gap d] [-stall-frac f] trace.jsonl
      per-run anytime profiles: width timeline, time to first/best solution,
      checkpoint cadence, progress-gap stall detection, memory telemetry
  compare [-json] [-time-threshold f] [-min-elapsed d] old.jsonl new.jsonl
      diff two traces of the same instance run by run; exits 1 when a run's
      width regressed or it slowed beyond the threshold
  check [-strict] trace.jsonl...
      validate traces against the event schema; -strict also rejects unknown
      event kinds and non-monotonic timestamps (single-threaded traces only)
  attr [-json] [-share-threshold f] trace.jsonl [new.jsonl]
      per-algorithm attribution report from the trace's resource-ledger
      events: wins, win rate, incumbent improvements, attributed nodes and
      node share, CPU estimate, cache traffic; with a second trace, diffs
      the two and exits 1 when a member's cost share regressed
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "check":
		return runCheck(args[1:], stdout, stderr)
	case "attr":
		return runAttr(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "tracestat: unknown command %q\n%s", args[0], usage)
		return 2
	}
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit profiles as JSON")
	stallGap := fs.Duration("stall-gap", analyze.DefaultStallOptions().MinGap,
		"smallest progress gap that can count as a stall")
	stallFrac := fs.Float64("stall-frac", analyze.DefaultStallOptions().Fraction,
		"fraction of the run the longest gap must cover to count as a stall")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracestat summary: expected exactly one trace file")
		return 2
	}
	tr, err := analyze.LoadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	profiles := analyze.Profiles(tr, analyze.StallOptions{MinGap: *stallGap, Fraction: *stallFrac})
	requests := analyze.Requests(tr)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		// CLI traces keep the historical plain-array shape; daemon traces
		// (request spans present) get an object with both views.
		var payload any = profiles
		if len(requests) > 0 {
			payload = struct {
				Runs     []*analyze.Profile        `json:"runs"`
				Requests []*analyze.RequestProfile `json:"requests"`
				Summary  *analyze.RequestSummary   `json:"request_summary"`
			}{profiles, requests, analyze.SummarizeRequests(requests)}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintf(stderr, "tracestat: %v\n", err)
			return 2
		}
		return 0
	}
	for i, p := range profiles {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		writeProfile(stdout, p)
	}
	if len(requests) > 0 {
		if len(profiles) > 0 {
			fmt.Fprintln(stdout)
		}
		writeRequests(stdout, requests)
	}
	if tr.Unknown > 0 {
		fmt.Fprintf(stdout, "\n%d events with unknown kind (newer writer?)\n", tr.Unknown)
	}
	return 0
}

// writeRequests renders the serving-side view of a daemon trace: the
// cross-request latency/queue-wait percentiles, the per-phase means, and a
// per-request phase breakdown.
func writeRequests(w io.Writer, reqs []*analyze.RequestProfile) {
	sum := analyze.SummarizeRequests(reqs)
	fmt.Fprintf(w, "requests: %d served", sum.Requests)
	if len(sum.ByOutcome) > 0 {
		fmt.Fprint(w, " (")
		first := true
		for _, o := range []string{"exact", "upper-bound", "degraded", "rejected", "error"} {
			if n := sum.ByOutcome[o]; n > 0 {
				if !first {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprintf(w, "%d %s", n, o)
				first = false
			}
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  latency: p50 %v, p95 %v, p99 %v, max %v\n",
		sum.Latency.P50.Round(time.Microsecond), sum.Latency.P95.Round(time.Microsecond),
		sum.Latency.P99.Round(time.Microsecond), sum.Latency.Max.Round(time.Microsecond))
	if sum.QueueWait.Count > 0 {
		fmt.Fprintf(w, "  queue wait: p50 %v, p95 %v, p99 %v, max %v\n",
			sum.QueueWait.P50.Round(time.Microsecond), sum.QueueWait.P95.Round(time.Microsecond),
			sum.QueueWait.P99.Round(time.Microsecond), sum.QueueWait.Max.Round(time.Microsecond))
	}
	fmt.Fprint(w, "  phase means:")
	for _, phase := range []string{"queue_wait", "parse", "cache", "solve", "encode"} {
		if d, ok := sum.PhaseMeans[phase]; ok {
			fmt.Fprintf(w, " %s=%v", phase, d.Round(time.Microsecond))
		}
	}
	fmt.Fprintln(w)
	for _, rp := range reqs {
		fmt.Fprintf(w, "  %s [%s]", rp.Req, rp.Algo)
		if rp.Outcome != "" {
			fmt.Fprintf(w, " %s", rp.Outcome)
		}
		fmt.Fprintf(w, " total %v:", rp.Total.Round(time.Microsecond))
		for _, phase := range []string{"queue_wait", "parse", "cache", "solve", "encode"} {
			if d, ok := rp.Phases[phase]; ok {
				fmt.Fprintf(w, " %s=%v", phase, d.Round(time.Microsecond))
			}
		}
		fmt.Fprintln(w)
	}
}

func writeProfile(w io.Writer, p *analyze.Profile) {
	algo := p.Algo
	if algo == "" {
		algo = "(unlabeled)"
	}
	fmt.Fprintf(w, "run %s: %d vertices / %d edges, %d events\n", algo, p.N, p.M, p.Events)
	status := "completed"
	if !p.Stopped {
		status = "trace cut before algo_stop"
	} else if p.Stop != "" {
		status = "stopped: " + p.Stop
	}
	exact := ""
	if p.Exact {
		exact = " (exact)"
	}
	fmt.Fprintf(w, "  result: width %d%s, lower bound %d, %s in %v\n",
		p.FinalWidth, exact, p.FinalLowerBound, status, p.Elapsed.Round(time.Millisecond))
	if len(p.Timeline) > 0 {
		fmt.Fprintf(w, "  anytime: %d improvements, first solution at %v, best reached at %v\n",
			len(p.Timeline), p.TimeToFirst.Round(time.Microsecond), p.TimeToBest.Round(time.Microsecond))
	}
	if p.Checkpoints > 1 {
		fmt.Fprintf(w, "  cadence: %d checkpoints, mean gap %v, max gap %v\n",
			p.Checkpoints, p.MeanCheckpointGap.Round(time.Microsecond), p.MaxCheckpointGap.Round(time.Microsecond))
	}
	stall := "no stall"
	if p.StallDetected {
		stall = "STALL"
	}
	fmt.Fprintf(w, "  progress: longest gap %v starting at %v (%s)\n",
		p.LongestProgressGap.Round(time.Millisecond), p.GapStart.Round(time.Millisecond), stall)
	if p.MaxOpen > 0 || p.MaxDepth > 0 || p.Backtracks > 0 {
		fmt.Fprintf(w, "  shape: max open %d, max closed %d, max depth %d, %d backtracks\n",
			p.MaxOpen, p.MaxClosed, p.MaxDepth, p.Backtracks)
	}
	if p.DistinctWidths > 0 {
		fmt.Fprintf(w, "  diversity: width stddev %.2f, %d distinct widths (last generation)\n",
			p.WidthStd, p.DistinctWidths)
	}
	if p.MemSamples > 0 {
		fmt.Fprintf(w, "  memory: peak heap %.1f MiB in use / %.1f MiB from OS, %d GC cycles (%d samples)\n",
			float64(p.MaxHeapAlloc)/(1<<20), float64(p.MaxHeapSys)/(1<<20), p.NumGC, p.MemSamples)
	}
	if hr := p.CacheHitRate(); hr >= 0 {
		fmt.Fprintf(w, "  cover cache: %d hits / %d misses (%.1f%% hit rate)\n",
			p.CacheHits, p.CacheMisses, 100*hr)
	}
	fmt.Fprintf(w, "  events:")
	for _, k := range obs.Kinds {
		if n := p.ByKind[k]; n > 0 {
			fmt.Fprintf(w, " %s=%d", k, n)
		}
	}
	fmt.Fprintln(w)
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the comparison as JSON")
	timeThreshold := fs.Float64("time-threshold", analyze.DefaultCompareOptions().TimeThreshold,
		"relative slowdown tolerated before a run counts as regressed")
	minElapsed := fs.Duration("min-elapsed", analyze.DefaultCompareOptions().MinElapsed,
		"runs faster than this on both sides are never time regressions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "tracestat compare: expected old.jsonl new.jsonl")
		return 2
	}
	oldT, err := analyze.LoadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	newT, err := analyze.LoadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	cmp := analyze.Compare(oldT, newT, analyze.CompareOptions{
		TimeThreshold: *timeThreshold, MinElapsed: *minElapsed,
	})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			fmt.Fprintf(stderr, "tracestat: %v\n", err)
			return 2
		}
	} else {
		writeComparison(stdout, cmp)
	}
	if cmp.Regressed() {
		fmt.Fprintln(stderr, "tracestat: regression detected")
		return 1
	}
	return 0
}

func writeComparison(w io.Writer, c *analyze.Comparison) {
	for _, d := range c.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "%-16s width %d -> %d, elapsed %v -> %v (%.2fx): %s\n",
			d.Algo, d.OldWidth, d.NewWidth,
			d.OldElapsed.Round(time.Millisecond), d.NewElapsed.Round(time.Millisecond),
			d.TimeRatio, verdict)
		for _, r := range d.Reasons {
			fmt.Fprintf(w, "  reason: %s\n", r)
		}
		for _, n := range d.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
	}
	for _, a := range c.OldOnly {
		fmt.Fprintf(w, "%-16s only in old trace\n", a)
	}
	for _, a := range c.NewOnly {
		fmt.Fprintf(w, "%-16s only in new trace\n", a)
	}
	if len(c.Deltas) == 0 {
		fmt.Fprintln(w, "no matching runs to compare")
	}
	if l := c.Latency; l != nil {
		verdict := "ok"
		if l.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(w, "%-16s p95 %v -> %v (%.2fx), p50 %v -> %v, %d -> %d requests: %s\n",
			"serving latency",
			l.Old.P95.Round(time.Millisecond), l.New.P95.Round(time.Millisecond), l.P95Ratio,
			l.Old.P50.Round(time.Millisecond), l.New.P50.Round(time.Millisecond),
			l.OldRequests, l.NewRequests, verdict)
		for _, r := range l.Reasons {
			fmt.Fprintf(w, "  reason: %s\n", r)
		}
	}
}

// runAttr renders the attribution report of one trace, or — given two
// traces — the cost-accounting diff between them.
func runAttr(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("attr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report (or comparison) as JSON")
	shareThreshold := fs.Float64("share-threshold", analyze.DefaultAttrCompareOptions().ShareThreshold,
		"absolute node-share growth tolerated before a member counts as a cost regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 && fs.NArg() != 2 {
		fmt.Fprintln(stderr, "tracestat attr: expected trace.jsonl [new.jsonl]")
		return 2
	}
	reports := make([]*analyze.AttributionReport, fs.NArg())
	for i := 0; i < fs.NArg(); i++ {
		tr, err := analyze.LoadFile(fs.Arg(i))
		if err != nil {
			fmt.Fprintf(stderr, "tracestat: %v\n", err)
			return 2
		}
		if reports[i] = analyze.Attribution(tr); reports[i] == nil {
			fmt.Fprintf(stderr, "tracestat: %s carries no attribution events (pre-ledger writer?)\n", fs.Arg(i))
			return 1
		}
	}
	enc := func(v any) int {
		e := json.NewEncoder(stdout)
		e.SetIndent("", "  ")
		if err := e.Encode(v); err != nil {
			fmt.Fprintf(stderr, "tracestat: %v\n", err)
			return 2
		}
		return 0
	}
	if fs.NArg() == 1 {
		if *asJSON {
			return enc(reports[0])
		}
		writeAttribution(stdout, reports[0])
		return 0
	}
	cmp := analyze.CompareAttribution(reports[0], reports[1],
		analyze.AttrCompareOptions{ShareThreshold: *shareThreshold})
	if *asJSON {
		if rc := enc(cmp); rc != 0 {
			return rc
		}
	} else {
		writeAttrComparison(stdout, cmp)
	}
	if cmp.Regressed() {
		fmt.Fprintln(stderr, "tracestat: cost-share regression detected")
		return 1
	}
	return 0
}

// writeAttribution renders the per-algorithm contribution/cost table.
func writeAttribution(w io.Writer, rep *analyze.AttributionReport) {
	fmt.Fprintf(w, "attribution: %d runs, %d attributed nodes\n", rep.Runs, rep.TotalNodes)
	fmt.Fprintf(w, "%-16s %5s %5s %6s %8s %12s %7s %10s %12s %6s\n",
		"algo", "runs", "wins", "win%", "improve", "nodes", "share", "cpu", "cache h/m", "width")
	for i := range rep.Members {
		m := &rep.Members[i]
		width := "-"
		if m.BestWidth > 0 {
			width = fmt.Sprintf("%d", m.BestWidth)
		}
		fmt.Fprintf(w, "%-16s %5d %5d %5.0f%% %8d %12d %6.1f%% %10v %6d/%-5d %6s\n",
			m.Algo, m.Runs, m.Wins, 100*m.WinRate(), m.Improvements, m.Nodes,
			100*m.Share, m.CPU.Round(time.Millisecond), m.CacheHits, m.CacheMisses, width)
	}
}

// writeAttrComparison renders the cost-accounting diff, one verdict line per
// member present in both traces.
func writeAttrComparison(w io.Writer, c *analyze.AttrComparison) {
	for _, d := range c.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "COST REGRESSED"
		}
		fmt.Fprintf(w, "%-16s share %5.1f%% -> %5.1f%%, win rate %3.0f%% -> %3.0f%%: %s\n",
			d.Algo, 100*d.OldShare, 100*d.NewShare, 100*d.OldWinRate, 100*d.NewWinRate, verdict)
		for _, r := range d.Reasons {
			fmt.Fprintf(w, "  reason: %s\n", r)
		}
	}
	for _, a := range c.OldOnly {
		fmt.Fprintf(w, "%-16s only in old trace\n", a)
	}
	for _, a := range c.NewOnly {
		fmt.Fprintf(w, "%-16s only in new trace\n", a)
	}
	if len(c.Deltas) == 0 {
		fmt.Fprintln(w, "no members to compare")
	}
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "also reject unknown event kinds and non-monotonic timestamps")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "tracestat check: expected at least one trace file")
		return 2
	}
	bad := false
	for _, path := range fs.Args() {
		var sum *obs.TraceSummary
		var err error
		if *strict {
			sum, err = obs.ValidateTraceFileStrict(path)
		} else {
			sum, err = obs.ValidateTraceFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "%s: INVALID: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Fprintf(stdout, "%s: ok: %d events, %d runs (%d improvements, %d checkpoints",
			path, sum.Events, sum.Starts, sum.Improvements, sum.Checkpoints)
		if sum.Unknown > 0 {
			fmt.Fprintf(stdout, ", %d unknown kinds", sum.Unknown)
		}
		fmt.Fprintln(stdout, ")")
	}
	if bad {
		return 1
	}
	return 0
}
