// Command decompose reads a graph or hypergraph, runs one of the library's
// decomposition algorithms, and reports the width, bounds and (optionally)
// the decomposition tree.
//
// Usage:
//
//	decompose -algo bb-ghw -in instance.hg -format hg
//	decompose -algo astar-tw -gen queen6_6
//	decompose -algo ga-ghw -gen grid2d_20 -timeout 30s -show
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"hypertree/internal/bench"
	"hypertree/internal/budget"
	"hypertree/internal/core"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/obs"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input file (alternative to -gen)")
		format  = flag.String("format", "hg", "input format: hg | dimacs | gr | edgelist")
		gen     = flag.String("gen", "", "named benchmark instance (see -list)")
		list    = flag.Bool("list", false, "list the named benchmark instances and exit")
		algo    = flag.String("algo", "bb-ghw", fmt.Sprintf("algorithm: %v", core.Algorithms))
		timeout = flag.Duration("timeout", time.Minute, "wall-clock budget (0 = unlimited)")
		nodes   = flag.Int64("nodes", 0, "search-node budget (0 = unlimited)")
		seed    = flag.Int64("seed", 1, "random seed for heuristic tie-breaking")
		show    = flag.Bool("show", false, "print the decomposition tree")

		parallel = flag.Bool("parallel", false, "run with one worker per CPU (GOMAXPROCS): parallel BB, parallel det-k-decomp, parallel GA evaluation; overridden by -workers")
		workers  = flag.Int("workers", 0, "explicit worker count for the parallel engines (0 = serial, or GOMAXPROCS with -parallel)")
		dotPath = flag.String("dot", "", "write the decomposition as Graphviz DOT to this file")
		tdPath  = flag.String("td", "", "write the tree decomposition in PACE .td format to this file")

		tracePath  = flag.String("trace", "", "write the run's instrumentation events as JSONL to this file")
		stats      = flag.Bool("stats", false, "print the run's aggregated statistics (anytime-width timeline, effort, cache traffic)")
		progress   = flag.Duration("progress", 0, "report run progress to stderr at this interval (0 = off)")
		traceCheck = flag.String("trace-check", "", "validate a JSONL trace file and exit (no run)")
		strict     = flag.Bool("strict", false, "with -trace-check: also reject unknown event kinds and non-monotonic timestamps (single-threaded traces only)")
	)
	flag.Parse()

	if *traceCheck != "" {
		validate := obs.ValidateTraceFile
		if *strict {
			validate = obs.ValidateTraceFileStrict
		}
		sum, err := validate(*traceCheck)
		if err != nil {
			fatal(fmt.Errorf("trace %s: %w", *traceCheck, err))
		}
		unknown := ""
		if sum.Unknown > 0 {
			unknown = fmt.Sprintf(", %d unknown kinds", sum.Unknown)
		}
		fmt.Printf("trace %s: valid (%d events, %d runs, %d improvements, %d checkpoints%s, algos %v)\n",
			*traceCheck, sum.Events, sum.Starts, sum.Improvements, sum.Checkpoints, unknown, sum.Algos)
		return
	}

	if *list {
		fmt.Println("graphs:")
		fmt.Println("  " + strings.Join(bench.GraphNames(), " "))
		fmt.Println("hypergraphs:")
		fmt.Println("  " + strings.Join(bench.HyperNames(), " "))
		return
	}

	// SIGINT/SIGTERM cancel the run's context; the algorithms stop at their
	// next checkpoint and the best decomposition found so far is still
	// printed, with its stop reason. A second signal force-exits (code 2)
	// without waiting for a checkpoint — signal.NotifyContext alone cannot
	// do that, so the channel is handled by hand. Installed before input
	// loading so a signal at any point after startup is caught.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "decompose: %v: canceling run (signal again to force exit)\n", sig)
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "decompose: second signal, forcing exit")
		os.Exit(2)
	}()

	alg, err := core.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	// One switch for every parallel engine: -parallel scales to the machine,
	// -workers pins an exact count (useful for comparing scaling steps).
	// Negative counts are an error; counts beyond the machine clamp to
	// GOMAXPROCS — more workers than CPUs only adds contention.
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be >= 0, got %d", *workers))
	}
	nw := *workers
	if nw == 0 && *parallel {
		nw = runtime.GOMAXPROCS(0)
	}
	nw = core.ClampWorkers(nw)
	h, err := loadInput(*inPath, *format, *gen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %s\n", h)

	var recorders []obs.Recorder
	var trace *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		trace = obs.NewJSONLWriter(f)
		recorders = append(recorders, trace)
	}
	var prog *obs.Progress
	if *progress > 0 {
		prog = obs.NewProgress(os.Stderr, *progress)
		recorders = append(recorders, prog)
	}

	d, err := core.Decompose(h, core.Options{
		Algorithm: alg,
		Ctx:       ctx,
		Timeout:   *timeout,
		MaxNodes:  *nodes,
		Seed:      *seed,
		Workers:   nw,
		Recorder:  obs.Tee(recorders...),
	})
	if prog != nil {
		// A run cut down by a contained panic never emits algo_stop; flush
		// the reporter's last known state so the terminal line still lands.
		prog.Finish()
	}
	if trace != nil {
		if cerr := trace.Close(); cerr != nil {
			fatal(fmt.Errorf("writing trace %s: %w", *tracePath, cerr))
		}
		if err == nil {
			fmt.Println("wrote", *tracePath)
		}
	}
	if err != nil {
		var pe *budget.PanicError
		if errors.As(err, &pe) {
			fatal(fmt.Errorf("algorithm panicked (contained): %w", pe))
		}
		fatal(err)
	}

	kind := "ghw"
	if alg.IsTreewidth() {
		kind = "treewidth"
	}
	if alg == core.AlgHW {
		kind = "hypertree width"
	}
	status := "upper bound"
	if d.Exact {
		status = "exact"
	}
	fmt.Printf("%s (%s): %d   lower bound: %d\n", kind, status, d.Width, d.LowerBound)
	fmt.Printf("effort: %d nodes, %d evaluations, %v\n", d.Nodes, d.Evaluations, d.Elapsed.Round(time.Millisecond))
	if d.Interrupted {
		fmt.Printf("run interrupted (%s): result is the best found within the budget\n", d.Stop)
	}
	if *stats && d.Stats != nil {
		fmt.Print(d.Stats.Summary())
	}

	if err := d.TD.Validate(h); err != nil {
		fatal(fmt.Errorf("internal error: invalid tree decomposition: %w", err))
	}
	if d.GHD != nil {
		if err := d.GHD.Validate(h); err != nil {
			fatal(fmt.Errorf("internal error: invalid GHD: %w", err))
		}
		fmt.Println("decomposition validated (tree decomposition + GHD conditions)")
	} else {
		fmt.Println("decomposition validated (tree decomposition conditions)")
	}
	if *show {
		if d.GHD != nil {
			printGHD(h, d.GHD)
		} else {
			printTD(h, d.TD)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if d.GHD != nil {
			err = d.GHD.WriteDOT(f, h)
		} else {
			err = d.TD.WriteDOT(f, h)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *dotPath)
	}
	if *tdPath != "" {
		f, err := os.Create(*tdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := d.TD.WriteTd(f, h.N()); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tdPath)
	}
}

func loadInput(inPath, format, gen string) (*hypergraph.Hypergraph, error) {
	switch {
	case gen != "":
		if gi, err := bench.Graph(gen); err == nil {
			return hypergraph.FromGraph(gi.Build()), nil
		}
		hi, err := bench.Hyper(gen)
		if err != nil {
			return nil, err
		}
		return hi.Build(), nil
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch format {
		case "hg":
			return hypergraph.ParseHG(f)
		case "dimacs":
			g, err := hypergraph.ParseDIMACS(f)
			if err != nil {
				return nil, err
			}
			return hypergraph.FromGraph(g), nil
		case "gr":
			g, err := hypergraph.ParseGr(f)
			if err != nil {
				return nil, err
			}
			return hypergraph.FromGraph(g), nil
		case "edgelist":
			return hypergraph.ParseEdgeList(f)
		default:
			return nil, fmt.Errorf("unknown format %q", format)
		}
	}
	return nil, fmt.Errorf("provide -in FILE or -gen NAME (or -list)")
}

func printTD(h *hypergraph.Hypergraph, td *decomp.TreeDecomposition) {
	fmt.Printf("tree decomposition: %d nodes, width %d\n", len(td.Bags), td.Width())
	printTree(td.Parent, td.Root, func(i int) string {
		return "{" + joinNames(h, td.Bags[i]) + "}"
	})
}

func printGHD(h *hypergraph.Hypergraph, g *decomp.GHD) {
	fmt.Printf("generalized hypertree decomposition: %d nodes, width %d\n", len(g.Bags), g.Width())
	printTree(g.Parent, g.Root, func(i int) string {
		var edges []string
		for _, e := range g.Lambdas[i] {
			edges = append(edges, h.EdgeName(e))
		}
		return "χ={" + joinNames(h, g.Bags[i]) + "}  λ={" + strings.Join(edges, ",") + "}"
	})
}

func printTree(parent []int, root int, label func(int) string) {
	children := make([][]int, len(parent))
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	var rec func(node, depth int)
	rec = func(node, depth int) {
		fmt.Printf("%s%s\n", strings.Repeat("  ", depth), label(node))
		sort.Ints(children[node])
		for _, c := range children[node] {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
}

func joinNames(h *hypergraph.Hypergraph, vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = h.VertexName(v)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "decompose:", err)
	os.Exit(1)
}
