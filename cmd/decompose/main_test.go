package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadInputFromRegistry(t *testing.T) {
	h, err := loadInput("", "hg", "queen5_5")
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 25 {
		t.Fatalf("queen5_5 has %d vertices", h.N())
	}
	h2, err := loadInput("", "hg", "grid2d_10")
	if err != nil {
		t.Fatal(err)
	}
	if h2.N() != 50 || h2.M() != 50 {
		t.Fatalf("grid2d_10 sizes wrong: %v", h2)
	}
	if _, err := loadInput("", "hg", "no-such-instance"); err == nil {
		t.Fatal("expected error for unknown instance")
	}
}

func TestLoadInputFromFiles(t *testing.T) {
	dir := t.TempDir()

	hgPath := filepath.Join(dir, "x.hg")
	if err := os.WriteFile(hgPath, []byte("c1(a,b,c),\nc2(c,d).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := loadInput(hgPath, "hg", "")
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 4 || h.M() != 2 {
		t.Fatalf("hg parse wrong: %v", h)
	}

	colPath := filepath.Join(dir, "x.col")
	if err := os.WriteFile(colPath, []byte("p edge 3 2\ne 1 2\ne 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadInput(colPath, "dimacs", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("dimacs parse wrong: %v", g)
	}

	elPath := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(elPath, []byte("0 1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := loadInput(elPath, "edgelist", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 || e.M() != 2 {
		t.Fatalf("edgelist parse wrong: %v", e)
	}

	if _, err := loadInput(elPath, "bogus", ""); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := loadInput(filepath.Join(dir, "missing"), "hg", ""); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := loadInput("", "hg", ""); err == nil {
		t.Fatal("expected error when neither -in nor -gen given")
	}
}
