// Exec-based signal-handling tests for the decompose CLI: the graceful
// first-signal path (cancel the run, print the anytime result, exit 0) and
// the second-signal force exit (code 2). These cross the process boundary on
// purpose — in-process tests cannot observe exit codes or real signal
// delivery.

package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildDecompose(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "decompose")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startLongRun launches an exact bb-ghw search on a grid far beyond test-time
// solvability and waits for the instance banner, which the CLI prints only
// after the signal handler is installed.
func startLongRun(t *testing.T, bin string) (*exec.Cmd, *bufio.Reader, *bufio.Reader) {
	t.Helper()
	cmd := exec.Command(bin, "-algo", "bb-ghw", "-gen", "grid2d_14", "-timeout", "1h")
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	stdout := bufio.NewReader(outPipe)
	line, err := stdout.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "instance:") {
		t.Fatalf("no instance banner: %q %v", line, err)
	}
	return cmd, stdout, bufio.NewReader(errPipe)
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// TestSignalGracefulCancel: one SIGTERM ends the run at its next checkpoint
// and the process still prints the best decomposition found, marked
// interrupted, and exits 0.
func TestSignalGracefulCancel(t *testing.T) {
	bin := buildDecompose(t)
	cmd, stdout, stderr := startLongRun(t, bin)
	time.Sleep(300 * time.Millisecond) // let the search get going

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	io.Copy(&out, stdout)
	io.Copy(&errOut, stderr)
	if code := exitCode(cmd.Wait()); code != 0 {
		t.Fatalf("graceful cancel exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{
		"run interrupted (canceled)",
		"ghw (upper bound):",
		"decomposition validated",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "canceling run") {
		t.Errorf("stderr missing cancel announcement:\n%s", errOut.String())
	}
}

// TestSignalSecondForcesExit: a second SIGTERM after the first is
// acknowledged exits 2 immediately instead of waiting for the work to
// finish. Racing the signals against a canceled search is hopeless — it
// unwinds in single-digit milliseconds — so the process is parked somewhere
// cancellation cannot reach: reading its input from a FIFO that never
// delivers. The signal handler installs before input loading, and our write
// end's open completing proves the process has reached the blocking read.
func TestSignalSecondForcesExit(t *testing.T) {
	bin := buildDecompose(t)
	fifo := filepath.Join(t.TempDir(), "in.fifo")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-algo", "bb-ghw", "-in", fifo, "-format", "hg")
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// Blocks until decompose opens the read side — i.e. until it is inside
	// loadInput with the signal handler already running. Never written to,
	// so the process stays parked there.
	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stderr := bufio.NewReader(errPipe)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	line, err := stderr.ReadString('\n')
	if err != nil || !strings.Contains(line, "canceling run") {
		t.Fatalf("no cancel acknowledgement: %q %v", line, err)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		io.Copy(&errOut, stderr)
		done <- exitCode(cmd.Wait())
	}()
	select {
	case code := <-done:
		if code != 2 {
			t.Fatalf("second signal exited %d, want 2\nstderr:\n%s", code, errOut.String())
		}
		if !strings.Contains(errOut.String(), "second signal, forcing exit") {
			t.Errorf("stderr missing force-exit announcement:\n%s", errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second signal did not force an exit")
	}
}

// TestRejectsNegativeWorkers: the CLI refuses a negative worker count up
// front instead of handing it to the engines.
func TestRejectsNegativeWorkers(t *testing.T) {
	bin := buildDecompose(t)
	cmd := exec.Command(bin, "-algo", "bb-ghw", "-gen", "grid2d_10", "-workers", "-4")
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("negative -workers exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "-workers must be >= 0") {
		t.Fatalf("missing validation message:\n%s", out)
	}
}

// TestClampsExcessWorkers: a worker count beyond the machine runs (clamped),
// not rejected, and still produces the exact answer.
func TestClampsExcessWorkers(t *testing.T) {
	bin := buildDecompose(t)
	cmd := exec.Command(bin, "-algo", "bb-ghw",
		"-in", filepath.Join("..", "..", "examples", "instances", "cycle6.hg"),
		"-workers", "100000")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("clamped run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ghw (exact): 2") {
		t.Fatalf("clamped run wrong answer:\n%s", out)
	}
}
