// Command experiments regenerates the thesis's evaluation tables.
//
// Usage:
//
//	experiments -table 5.1 -scale small
//	experiments -table all -scale smoke
//	experiments -bench-json -bench-out BENCH_ghw.json
//	experiments -bench-check BENCH_ghw.json
//
// Scales: smoke (seconds), small (about a minute per table), full
// (approximates the thesis's one-hour-per-instance protocol).
//
// -bench-json runs the ghw width-evaluator microbenchmarks (engine,
// engine without cache, pre-engine slice path) over a fixed instance set,
// prints benchstat-compatible lines, and writes a JSON report; -bench-check
// validates such a report and exits; -bench-diff old.json new.json compares
// two reports and exits 1 when any entry slowed beyond
// -bench-diff-threshold (make bench-diff runs it as a regression gate).
//
// -workers N runs the per-instance rows of the instance-outer tables on N
// goroutines. Every instance keeps its own seed and budget and rows are
// emitted in the serial order, so the table values are unchanged — only the
// wall clock of a whole table run drops (on multi-core machines).
//
// -metrics-addr serves runtime metrics while experiments run: per-kind obs
// event counters and the cover-cache hit ratio in OpenMetrics text at
// /metrics, expvar at /debug/vars and pprof profiles at /debug/pprof/ (see
// OBSERVABILITY.md).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hypertree/internal/bench"
	"hypertree/internal/obs"
)

// tablesCompleted counts finished tables, exported at /debug/vars so a long
// -table all run can be watched from outside.
var tablesCompleted = expvar.NewInt("experiments_tables_completed")

func main() {
	var (
		table              = flag.String("table", "all", "table id ("+strings.Join(bench.TableIDs(), ", ")+") or 'all'")
		scale              = flag.String("scale", "small", "scale: smoke | small | full")
		benchJSON          = flag.Bool("bench-json", false, "run the ghw evaluator microbenchmarks and write a JSON report")
		benchOut           = flag.String("bench-out", "BENCH_ghw.json", "output path for -bench-json")
		benchCheck         = flag.String("bench-check", "", "validate a -bench-json report at this path and exit")
		benchDiff          = flag.String("bench-diff", "", "old -bench-json report; compare against the new report given as the next argument and exit 1 on regression")
		benchDiffThreshold = flag.Float64("bench-diff-threshold", bench.DefaultDiffThreshold,
			"relative ns/op slowdown tolerated by -bench-diff (0.5 = 50%)")
		queryDemo = flag.String("query-demo", "", "decompose this registry instance once, compile the join-tree plan, and serve a demo query workload (e.g. grid2d_10)")
		metricsAddr = flag.String("metrics-addr", "", "serve OpenMetrics event counters (/metrics), expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
		workers     = flag.Int("workers", 0, "run the instance rows of the instance-outer tables on this many goroutines (0/1 = serial; table values are identical either way)")
	)
	flag.Parse()

	// obsCounters aggregates every table run's instrumentation events for the
	// metrics endpoints; nil when no endpoint is serving (the nil-Recorder
	// contract keeps the runs unobserved and uninstrumented in that case).
	var obsCounters *obs.EventCounters
	if *metricsAddr != "" {
		obsCounters = obs.NewEventCounters()
		expvar.Publish("obs_events", expvar.Func(func() interface{} { return obsCounters.Counts() }))
		// expvar and net/http/pprof register on the default mux at import;
		// /metrics serves the same counters in OpenMetrics text for scrapers.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obsCounters.WriteOpenMetrics(w); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: /metrics:", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: metrics server:", err)
			}
		}()
		fmt.Printf("experiments: serving metrics on http://%s/metrics, /debug/vars and /debug/pprof/\n",
			*metricsAddr)
	}

	if *benchDiff != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-bench-diff needs the new report as its only positional argument: experiments -bench-diff old.json new.json"))
		}
		out, regressed, err := bench.CompareBenchJSON(*benchDiff, flag.Arg(0), *benchDiffThreshold)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if regressed {
			fmt.Fprintln(os.Stderr, "experiments: bench regression detected")
			os.Exit(1)
		}
		fmt.Println("experiments: no bench regression")
		return
	}
	if *benchCheck != "" {
		if err := bench.CheckBenchJSON(*benchCheck); err != nil {
			fatal(err)
		}
		fmt.Printf("experiments: %s is a well-formed bench report\n", *benchCheck)
		return
	}
	if *queryDemo != "" {
		if err := bench.RunQueryDemo(*queryDemo, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		}); err != nil {
			fatal(err)
		}
		return
	}
	if *benchJSON {
		report, err := bench.RunBenchJSON(nil, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		})
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBenchJSON(report, *benchOut); err != nil {
			fatal(err)
		}
		fmt.Printf("experiments: wrote %s (%d entries)\n", *benchOut, len(report.Entries))
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancel in-flight runs: the current table still prints
	// (with anytime per-instance results), and no further table starts.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	sc.Ctx = ctx
	sc.Workers = *workers
	if obsCounters != nil {
		sc.Recorder = obsCounters
	}

	ids := bench.TableIDs()
	if *table != "all" {
		if _, ok := bench.Tables[*table]; !ok {
			fatal(fmt.Errorf("unknown table %q (have %v)", *table, bench.TableIDs()))
		}
		ids = []string{*table}
	}
	ran := map[string]bool{}
	for _, id := range ids {
		runner := bench.Tables[id]
		// 8.2 and 9.2 share their runner with 8.1/9.1; don't run twice in
		// 'all' mode.
		key := fmt.Sprintf("%p", runner)
		if *table == "all" && ran[key] {
			continue
		}
		ran[key] = true
		fmt.Println(runner(sc).Format())
		tablesCompleted.Add(1)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; remaining tables skipped")
			break
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
