// Command experiments regenerates the thesis's evaluation tables.
//
// Usage:
//
//	experiments -table 5.1 -scale small
//	experiments -table all -scale smoke
//
// Scales: smoke (seconds), small (about a minute per table), full
// (approximates the thesis's one-hour-per-instance protocol).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hypertree/internal/bench"
)

func main() {
	var (
		table = flag.String("table", "all", "table id ("+strings.Join(bench.TableIDs(), ", ")+") or 'all'")
		scale = flag.String("scale", "small", "scale: smoke | small | full")
	)
	flag.Parse()

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancel in-flight runs: the current table still prints
	// (with anytime per-instance results), and no further table starts.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	sc.Ctx = ctx

	ids := bench.TableIDs()
	if *table != "all" {
		if _, ok := bench.Tables[*table]; !ok {
			fatal(fmt.Errorf("unknown table %q (have %v)", *table, bench.TableIDs()))
		}
		ids = []string{*table}
	}
	ran := map[string]bool{}
	for _, id := range ids {
		runner := bench.Tables[id]
		// 8.2 and 9.2 share their runner with 8.1/9.1; don't run twice in
		// 'all' mode.
		key := fmt.Sprintf("%p", runner)
		if *table == "all" && ran[key] {
			continue
		}
		ran[key] = true
		fmt.Println(runner(sc).Format())
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; remaining tables skipped")
			break
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
