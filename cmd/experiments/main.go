// Command experiments regenerates the thesis's evaluation tables.
//
// Usage:
//
//	experiments -table 5.1 -scale small
//	experiments -table all -scale smoke
//	experiments -bench-json -bench-out BENCH_ghw.json
//	experiments -bench-check BENCH_ghw.json
//
// Scales: smoke (seconds), small (about a minute per table), full
// (approximates the thesis's one-hour-per-instance protocol).
//
// -bench-json runs the ghw width-evaluator microbenchmarks (engine,
// engine without cache, pre-engine slice path) over a fixed instance set,
// prints benchstat-compatible lines, and writes a JSON report; -bench-check
// validates such a report and exits.
//
// -metrics-addr serves runtime metrics while experiments run: expvar at
// /debug/vars and pprof profiles at /debug/pprof/ (see OBSERVABILITY.md).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hypertree/internal/bench"
)

// tablesCompleted counts finished tables, exported at /debug/vars so a long
// -table all run can be watched from outside.
var tablesCompleted = expvar.NewInt("experiments_tables_completed")

func main() {
	var (
		table      = flag.String("table", "all", "table id ("+strings.Join(bench.TableIDs(), ", ")+") or 'all'")
		scale      = flag.String("scale", "small", "scale: smoke | small | full")
		benchJSON   = flag.Bool("bench-json", false, "run the ghw evaluator microbenchmarks and write a JSON report")
		benchOut    = flag.String("bench-out", "BENCH_ghw.json", "output path for -bench-json")
		benchCheck  = flag.String("bench-check", "", "validate a -bench-json report at this path and exit")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060")
	)
	flag.Parse()

	if *metricsAddr != "" {
		// expvar and net/http/pprof register on the default mux at import.
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: metrics server:", err)
			}
		}()
		fmt.Printf("experiments: serving metrics on http://%s/debug/vars and http://%s/debug/pprof/\n",
			*metricsAddr, *metricsAddr)
	}

	if *benchCheck != "" {
		if err := bench.CheckBenchJSON(*benchCheck); err != nil {
			fatal(err)
		}
		fmt.Printf("experiments: %s is a well-formed bench report\n", *benchCheck)
		return
	}
	if *benchJSON {
		report, err := bench.RunBenchJSON(nil, func(format string, args ...interface{}) {
			fmt.Printf(format, args...)
		})
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBenchJSON(report, *benchOut); err != nil {
			fatal(err)
		}
		fmt.Printf("experiments: wrote %s (%d entries)\n", *benchOut, len(report.Entries))
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	// SIGINT/SIGTERM cancel in-flight runs: the current table still prints
	// (with anytime per-instance results), and no further table starts.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	sc.Ctx = ctx

	ids := bench.TableIDs()
	if *table != "all" {
		if _, ok := bench.Tables[*table]; !ok {
			fatal(fmt.Errorf("unknown table %q (have %v)", *table, bench.TableIDs()))
		}
		ids = []string{*table}
	}
	ran := map[string]bool{}
	for _, id := range ids {
		runner := bench.Tables[id]
		// 8.2 and 9.2 share their runner with 8.1/9.1; don't run twice in
		// 'all' mode.
		key := fmt.Sprintf("%p", runner)
		if *table == "all" && ran[key] {
			continue
		}
		ran[key] = true
		fmt.Println(runner(sc).Format())
		tablesCompleted.Add(1)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; remaining tables skipped")
			break
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
