// Command gen writes benchmark instances to files, either from the named
// registry (the thesis's DIMACS / CSP-library instance sets and their
// substitutes) or from the parameterized generator families.
//
// Usage:
//
//	gen -name queen8_8 -out queen8.col
//	gen -name grid2d_20 -format hg -out grid2d_20.hg
//	gen -family queen -n 12 -out queen12.col
//	gen -family circuit -n 200 -m 220 -seed 7 -format edgelist -out c.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hypertree/internal/bench"
	"hypertree/internal/hypergraph"
)

func main() {
	var (
		name   = flag.String("name", "", "named registry instance")
		family = flag.String("family", "", "generator family: queen | grid | myciel | clique | random | grid2d | grid3d | adder | bridge | circuit")
		n      = flag.Int("n", 8, "primary size parameter")
		m      = flag.Int("m", 0, "edge count (random/circuit families)")
		seed   = flag.Int64("seed", 1, "seed (random families)")
		format = flag.String("format", "", "output format: dimacs | hg | edgelist (default by kind)")
		out    = flag.String("out", "", "output file (default stdout)")
		list   = flag.Bool("list", false, "list named instances and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("graphs:      " + strings.Join(bench.GraphNames(), " "))
		fmt.Println("hypergraphs: " + strings.Join(bench.HyperNames(), " "))
		return
	}

	g, h, err := build(*name, *family, *n, *m, *seed)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if err := write(w, *format, g, h); err != nil {
		fatal(err)
	}
}

// build resolves either a registry name or a generator family into a graph
// or hypergraph (exactly one of the two results is non-nil on success).
func build(name, family string, n, m int, seed int64) (*hypergraph.Graph, *hypergraph.Hypergraph, error) {
	switch {
	case name != "":
		if gi, err := bench.Graph(name); err == nil {
			return gi.Build(), nil, nil
		}
		if hi, err := bench.Hyper(name); err == nil {
			return nil, hi.Build(), nil
		}
		return nil, nil, fmt.Errorf("unknown instance %q", name)
	case family != "":
		switch family {
		case "queen":
			return hypergraph.Queen(n), nil, nil
		case "grid":
			return hypergraph.Grid(n), nil, nil
		case "myciel":
			return hypergraph.Mycielski(n), nil, nil
		case "clique":
			return hypergraph.CliqueGraph(n), nil, nil
		case "random":
			return hypergraph.RandomGraph(n, m, seed), nil, nil
		case "grid2d":
			return nil, hypergraph.Grid2D(n), nil
		case "grid3d":
			return nil, hypergraph.Grid3D(n), nil
		case "adder":
			return nil, hypergraph.Adder(n), nil
		case "bridge":
			return nil, hypergraph.Bridge(n), nil
		case "circuit":
			return nil, hypergraph.RandomCircuit(n, m, seed), nil
		}
		return nil, nil, fmt.Errorf("unknown family %q", family)
	}
	return nil, nil, fmt.Errorf("provide -name or -family (or -list)")
}

// write emits the instance in the requested format (default: dimacs for
// graphs, hg for hypergraphs).
func write(w io.Writer, format string, g *hypergraph.Graph, h *hypergraph.Hypergraph) error {
	if format == "" {
		if g != nil {
			format = "dimacs"
		} else {
			format = "hg"
		}
	}
	switch {
	case g != nil && format == "dimacs":
		return hypergraph.WriteDIMACS(w, g)
	case g != nil && format == "gr":
		return hypergraph.WriteGr(w, g)
	case g != nil && format == "hg":
		return hypergraph.WriteHG(w, hypergraph.FromGraph(g))
	case g != nil && format == "edgelist":
		return hypergraph.WriteEdgeList(w, hypergraph.FromGraph(g))
	case h != nil && format == "hg":
		return hypergraph.WriteHG(w, h)
	case h != nil && format == "edgelist":
		return hypergraph.WriteEdgeList(w, h)
	case h != nil && format == "dimacs":
		return fmt.Errorf("dimacs format cannot express hyperedges; use -format hg")
	}
	return fmt.Errorf("unsupported format %q", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}
