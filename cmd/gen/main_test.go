package main

import (
	"bytes"
	"strings"
	"testing"

	"hypertree/internal/hypergraph"
)

func TestBuildFamilies(t *testing.T) {
	for _, tc := range []struct {
		family    string
		n, m      int
		wantGraph bool
		wantV     int
	}{
		{"queen", 5, 0, true, 25},
		{"grid", 4, 0, true, 16},
		{"myciel", 4, 0, true, 23},
		{"clique", 6, 0, true, 6},
		{"random", 10, 20, true, 10},
		{"grid2d", 6, 0, false, 18},
		{"grid3d", 4, 0, false, 32},
		{"adder", 3, 0, false, 16},
		{"bridge", 3, 0, false, 29},
		{"circuit", 30, 35, false, 30},
	} {
		g, h, err := build("", tc.family, tc.n, tc.m, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if tc.wantGraph {
			if g == nil || h != nil || g.N() != tc.wantV {
				t.Errorf("%s: got g=%v h=%v", tc.family, g, h)
			}
		} else {
			if h == nil || g != nil || h.N() != tc.wantV {
				t.Errorf("%s: got g=%v h=%v", tc.family, g, h)
			}
		}
	}
}

func TestBuildByName(t *testing.T) {
	g, h, err := build("myciel4", "", 0, 0, 0)
	if err != nil || g == nil || h != nil {
		t.Fatalf("myciel4: g=%v h=%v err=%v", g, h, err)
	}
	g2, h2, err := build("adder_15", "", 0, 0, 0)
	if err != nil || g2 != nil || h2 == nil {
		t.Fatalf("adder_15: g=%v h=%v err=%v", g2, h2, err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build("nope", "", 0, 0, 0); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if _, _, err := build("", "nope", 3, 0, 0); err == nil {
		t.Fatal("expected error for unknown family")
	}
	if _, _, err := build("", "", 0, 0, 0); err == nil {
		t.Fatal("expected error for no selection")
	}
}

func TestWriteFormats(t *testing.T) {
	g := hypergraph.Grid(3)
	h := hypergraph.Grid2D(4)
	for _, tc := range []struct {
		format string
		g      *hypergraph.Graph
		h      *hypergraph.Hypergraph
		want   string
	}{
		{"", g, nil, "p edge 9 12"},
		{"dimacs", g, nil, "p edge"},
		{"hg", g, nil, "("},
		{"edgelist", g, nil, " "},
		{"", nil, h, "("},
		{"hg", nil, h, "("},
		{"edgelist", nil, h, " "},
	} {
		var buf bytes.Buffer
		if err := write(&buf, tc.format, tc.g, tc.h); err != nil {
			t.Fatalf("format %q: %v", tc.format, err)
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("format %q output missing %q:\n%s", tc.format, tc.want, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := write(&buf, "dimacs", nil, h); err == nil {
		t.Fatal("hypergraph as dimacs should error")
	}
	if err := write(&buf, "bogus", g, nil); err == nil {
		t.Fatal("unknown format should error")
	}
}
